// Package align implements the sequence-alignment core shared by FMSA
// and SalSSA: functions are linearized into sequences of labels and
// instructions, and a Needleman–Wunsch dynamic program finds the optimal
// pairing of mergeable entries (match-or-gap scoring: incompatible
// entries are never aligned against each other, they take gaps).
//
// The hot path is allocation-free in steady state: mergeability is
// decided by comparing interned class IDs (see classes.go) instead of
// re-walking types per DP cell, linearizations and class vectors are
// cached per function for a whole run (see cache.go), and the DP
// score/direction slabs are recycled through capacity-classed pools
// (see pool.go).
//
// The DP matrix size is accounted and reported because it dominates the
// memory profile of function merging (the paper's Figure 22).
package align

import (
	"context"
	"fmt"

	"repro/internal/ir"
)

// Entry is one element of a linearized function: either a block label or
// an instruction.
type Entry struct {
	Label *ir.Block
	Instr *ir.Instruction
}

// IsLabel reports whether the entry is a block label.
func (e Entry) IsLabel() bool { return e.Label != nil }

// String returns a short debug form.
func (e Entry) String() string {
	if e.IsLabel() {
		return "label %" + e.Label.Name()
	}
	return e.Instr.Op().String()
}

// Linearize flattens f into a sequence of labels and instructions in
// block order. Phi-nodes and landingpads are excluded: SalSSA treats
// them as attached to their block's label (the paper aligns neither),
// and FMSA runs after register demotion, which removes phis entirely.
// The sequence length is counted up front so the result is built in one
// allocation.
func Linearize(f *ir.Function) []Entry {
	n := 0
	for _, b := range f.Blocks {
		n++
		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi || in.Op() == ir.OpLandingPad {
				continue
			}
			n++
		}
	}
	seq := make([]Entry, 0, n)
	for _, b := range f.Blocks {
		seq = append(seq, Entry{Label: b})
		for _, in := range b.Instrs() {
			if in.Op() == ir.OpPhi || in.Op() == ir.OpLandingPad {
				continue
			}
			seq = append(seq, Entry{Instr: in})
		}
	}
	return seq
}

// Seq is a linearized function together with its mergeability-class
// vector: Classes[i] is the Interner class of Entries[i]. Seqs sharing
// one Interner (one Cache) are alignable against each other.
type Seq struct {
	Entries []Entry
	Classes []int32
}

// NewSeq linearizes f and interns its class vector with it.
func NewSeq(f *ir.Function, it *Interner) Seq {
	entries := Linearize(f)
	return Seq{Entries: entries, Classes: it.Classes(entries, nil)}
}

// Mergeable reports whether two entries may be aligned as a matching
// pair. Labels always match labels. Instructions match when they have
// the same opcode, result type, operand-type vector and compatible
// auxiliary data; operands that must remain constant after merging
// (switch case values, callees, struct GEP indices, alloca types) must
// be identical, since they cannot be selected by the function identifier
// at run time.
//
// Mergeable is the specification; the DP inner loops decide the same
// predicate by comparing interned class IDs (ClassesMatch). The
// differential property test in classes_test.go keeps the two in lock
// step.
func Mergeable(a, b Entry) bool {
	if a.IsLabel() || b.IsLabel() {
		return a.IsLabel() && b.IsLabel()
	}
	x, y := a.Instr, b.Instr
	if x.Op() != y.Op() || !ir.TypesEqual(x.Type(), y.Type()) {
		return false
	}
	if x.NumOperands() != y.NumOperands() {
		return false
	}
	for i := 0; i < x.NumOperands(); i++ {
		if !ir.TypesEqual(x.Operand(i).Type(), y.Operand(i).Type()) {
			return false
		}
	}
	switch x.Op() {
	case ir.OpICmp, ir.OpFCmp:
		return x.Pred == y.Pred
	case ir.OpAlloca:
		return ir.TypesEqual(x.AllocTy, y.AllocTy)
	case ir.OpCall, ir.OpInvoke:
		// Different callees would need a function-pointer select; like the
		// prototype, restrict merging to identical callees.
		return x.Callee() == y.Callee()
	case ir.OpSwitch:
		cx, cy := x.SwitchCases(), y.SwitchCases()
		if len(cx) != len(cy) {
			return false
		}
		for i := range cx {
			if cx[i].Val.V != cy[i].Val.V {
				return false
			}
		}
		return true
	case ir.OpGEP:
		// Struct field indices must remain literal constants.
		tx, ok := x.Operand(0).Type().(*ir.PointerType)
		if !ok {
			return false
		}
		cur := tx.Elem
		for i := 2; i < x.NumOperands(); i++ {
			st, isStruct := cur.(*ir.StructType)
			if isStruct {
				ix, okx := x.Operand(i).(*ir.ConstInt)
				iy, oky := y.Operand(i).(*ir.ConstInt)
				if !okx || !oky || ix.V != iy.V {
					return false
				}
				cur = st.Fields[ix.V]
				continue
			}
			if at, isArr := cur.(*ir.ArrayType); isArr {
				cur = at.Elem
			}
		}
		return true
	}
	return true
}

// Pair is one row of an alignment: a matched pair (both non-nil) or a
// gap (exactly one non-nil).
type Pair struct {
	A, B *Entry
}

// IsMatch reports whether the pair aligns two entries.
func (p Pair) IsMatch() bool { return p.A != nil && p.B != nil }

// Options configures the alignment scoring.
type Options struct {
	// InstrMatchScore is the score for aligning two mergeable
	// instructions (default 2: one instruction saved, roughly).
	InstrMatchScore int32
	// LabelMatchScore is the score for aligning two labels (default 1).
	LabelMatchScore int32
	// GapPenalty is subtracted per gap entry (default 0; with
	// match-or-gap scoring any positive match weight already maximises
	// matched entries).
	GapPenalty int32
	// MaxCells caps the DP matrix size; alignments needing more cells
	// fail with ErrTooLarge. Zero means no cap.
	MaxCells int64
	// Linear selects Hirschberg's divide-and-conquer alignment: the same
	// optimal score in O(n+m) memory for roughly twice the time. An
	// extension beyond the paper, which uses the quadratic DP.
	Linear bool
	// MinScore, when positive, floors the useful alignment score: the
	// solvers abandon the DP with ErrBelowBound as soon as the best
	// still-achievable score provably falls below MinScore, and also
	// when the finished score lands below it (sparing the backtrack).
	// The per-row bound relies on rows being monotone in the column —
	// true exactly when GapPenalty is 0 (the default scoring) — so the
	// floor is ignored under a non-zero gap penalty. The driver's
	// planning funnel derives MinScore from the admissible profit bound
	// (costmodel.PairBound.ScoreNeeded), making an abort a proof that
	// the pair cannot clear the profitability gate.
	MinScore int32
}

// DefaultOptions returns the scoring used throughout the evaluation.
func DefaultOptions() Options {
	return Options{InstrMatchScore: 2, LabelMatchScore: 1, GapPenalty: 0}
}

// ErrTooLarge is returned when the DP matrix would exceed Options.MaxCells.
var ErrTooLarge = fmt.Errorf("align: sequences too large")

// ErrBelowBound is returned by a bounded alignment (Options.MinScore >
// 0) that proved the optimal score falls below the floor. No pairs are
// produced; with an admissibly derived floor the caller may treat the
// pair as unprofitable without aligning it.
var ErrBelowBound = fmt.Errorf("align: optimal score below MinScore")

// Result is the outcome of an alignment.
type Result struct {
	Pairs []Pair
	// Score is the DP objective value.
	Score int32
	// Matches counts matched pairs (labels + instructions).
	Matches int
	// InstrMatches counts matched instruction pairs only.
	InstrMatches int
	// MatrixBytes is the memory used by the DP matrices, the dominant
	// memory cost of merging (quadratic in sequence length). It reports
	// the logical DP footprint; the backing slabs are pooled and reused
	// across alignments.
	MatrixBytes int64

	// buf is the reusable backing store of Pairs. The backtrack fills it
	// from the end and Pairs aliases the tail, so the full capacity must
	// be remembered here — retaining only the tail slice would shed the
	// front slots on every reuse.
	buf []Pair
}

// reset clears the result for reuse, keeping the pair buffer.
func (r *Result) reset() {
	r.Pairs = nil
	r.Score = 0
	r.Matches = 0
	r.InstrMatches = 0
	r.MatrixBytes = 0
}

// Needleman–Wunsch backtrack directions.
const (
	dirDiag byte = iota + 1
	dirUp        // gap in B (consume A)
	dirLeft      // gap in A (consume B)
)

// Align computes the optimal global alignment of the two sequences under
// match-or-gap scoring.
func Align(a, b []Entry, opts Options) (*Result, error) {
	return AlignCtx(context.Background(), a, b, opts)
}

// AlignCtx is Align with cancellation: the DP fills row by row and the
// context is polled between rows, so a cancelled alignment returns
// ctx.Err() without finishing the quadratic fill.
//
// The entries are interned into a transient class universe first; when
// aligning many pairs, intern once through a Cache (or NewSeq) and use
// AlignSeqsCtx instead.
func AlignCtx(ctx context.Context, a, b []Entry, opts Options) (*Result, error) {
	it := NewInterner()
	sa := Seq{Entries: a, Classes: it.Classes(a, nil)}
	sb := Seq{Entries: b, Classes: it.Classes(b, nil)}
	return AlignSeqsCtx(ctx, sa, sb, opts)
}

// AlignSeqsCtx aligns two interned sequences with the solver selected by
// opts.Linear. Both Seqs must come from the same Interner.
func AlignSeqsCtx(ctx context.Context, a, b Seq, opts Options) (*Result, error) {
	res := &Result{}
	if err := AlignSeqsInto(ctx, a, b, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// AlignSeqsBounded is AlignSeqsCtx with a score floor: minScore > 0
// makes both solvers abandon the DP with ErrBelowBound once the
// optimal score provably cannot reach the floor (see Options.MinScore
// for the validity condition). minScore <= 0 is exactly AlignSeqsCtx.
func AlignSeqsBounded(ctx context.Context, a, b Seq, opts Options, minScore int32) (*Result, error) {
	opts.MinScore = minScore
	return AlignSeqsCtx(ctx, a, b, opts)
}

// AlignSeqsInto is AlignSeqsCtx writing into a caller-owned Result,
// reusing its Pairs capacity: together with the pooled DP slabs this
// makes steady-state alignment allocation-free. On error the Result
// holds no pairs.
func AlignSeqsInto(ctx context.Context, a, b Seq, opts Options, res *Result) error {
	res.reset()
	if opts.Linear {
		return alignLinearSeqs(ctx, a, b, opts, res)
	}
	return alignQuadratic(ctx, a.Entries, b.Entries, a.Classes, b.Classes, opts, res)
}

// alignQuadratic is the Needleman–Wunsch core: class-vector mergeability
// tests, pooled score/direction slabs, and an in-place backtrack filling
// the pair list from the end.
func alignQuadratic(ctx context.Context, a, b []Entry, ca, cb []int32, opts Options, res *Result) error {
	n, m := len(a), len(b)
	cells := int64(n+1) * int64(m+1)
	if opts.MaxCells > 0 && cells > opts.MaxCells {
		return ErrTooLarge
	}
	// Bounded mode: rem tracks the match score still reachable from the
	// rows not yet filled. With gap 0 every row is monotone in j, so
	// row[m] is the best score over all prefixes of b, and any complete
	// alignment scores at most row[m] + rem — two int ops per row decide
	// whether the floor is still reachable. A non-zero gap penalty
	// breaks the monotonicity, so the floor is ignored there.
	minScore := opts.MinScore
	if opts.GapPenalty != 0 {
		minScore = 0
	}
	var rem int32
	if minScore > 0 {
		rem = classPotential(ca, opts)
		if rem < minScore || classPotential(cb, opts) < minScore {
			return ErrBelowBound
		}
	}
	// score uses int32 (4 bytes) and dir one byte per cell, matching the
	// quadratic footprint the paper measures.
	slab := getSlab(cells)
	defer putSlab(slab)
	score := slab.score
	dir := slab.dir
	idx := func(i, j int) int64 { return int64(i)*int64(m+1) + int64(j) }

	gap := opts.GapPenalty
	for i := 1; i <= n; i++ {
		score[idx(i, 0)] = score[idx(i-1, 0)] - gap
		dir[idx(i, 0)] = dirUp
	}
	for j := 1; j <= m; j++ {
		score[idx(0, j)] = score[idx(0, j-1)] - gap
		dir[idx(0, j)] = dirLeft
	}
	for i := 1; i <= n; i++ {
		if i&cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		cai := ca[i-1]
		ms := opts.InstrMatchScore
		if cai == ClassLabel {
			ms = opts.LabelMatchScore
		}
		row := score[idx(i, 0) : idx(i, m)+1]
		prev := score[idx(i-1, 0) : idx(i-1, m)+1]
		drow := dir[idx(i, 0) : idx(i, m)+1]
		matchable := cai != classSolo
		for j := 1; j <= m; j++ {
			best := prev[j] - gap
			d := dirUp
			if s := row[j-1] - gap; s > best {
				best, d = s, dirLeft
			}
			if matchable && cai == cb[j-1] {
				if s := prev[j-1] + ms; s >= best {
					best, d = s, dirDiag
				}
			}
			row[j] = best
			drow[j] = d
		}
		if minScore > 0 {
			if matchable {
				rem -= ms
			}
			if row[m]+rem < minScore {
				return ErrBelowBound
			}
		}
	}

	res.Score = score[idx(n, m)]
	res.MatrixBytes = cells * 5
	backtrack(a, b, dir, n, m, res)
	return nil
}

// backtrack recovers the alignment path from the direction matrix,
// filling the pair list in place from the end (a path has at most n+m
// pairs) instead of building a reversed list and copying.
func backtrack(a, b []Entry, dir []byte, n, m int, res *Result) {
	need := n + m
	if cap(res.buf) < need {
		res.buf = make([]Pair, need)
	}
	buf := res.buf[:need]
	k := need
	for i, j := n, m; i > 0 || j > 0; {
		k--
		switch dir[int64(i)*int64(m+1)+int64(j)] {
		case dirDiag:
			buf[k] = Pair{A: &a[i-1], B: &b[j-1]}
			res.Matches++
			if !a[i-1].IsLabel() {
				res.InstrMatches++
			}
			i--
			j--
		case dirUp:
			buf[k] = Pair{A: &a[i-1]}
			i--
		case dirLeft:
			buf[k] = Pair{B: &b[j-1]}
			j--
		default:
			panic("align: corrupt backtrack matrix")
		}
	}
	res.Pairs = buf[k:]
}

// cancelStride is the row mask between context polls in the DP loops: a
// poll every 16 rows keeps the overhead unmeasurable while bounding the
// latency of cancellation by a few thousand cell updates.
const cancelStride = 0xf

// classPotential is the total match score one side can contribute: the
// sum of per-entry match scores over entries whose class can match at
// all. At GapPenalty 0 it upper-bounds any alignment's score, and its
// suffix sums drive the bounded solvers' per-row abort.
func classPotential(cs []int32, opts Options) int32 {
	var p int32
	for _, c := range cs {
		switch {
		case c == ClassLabel:
			p += opts.LabelMatchScore
		case c != classSolo:
			p += opts.InstrMatchScore
		}
	}
	return p
}

// AlignFunctions linearizes both functions and aligns them with the
// solver selected by opts.Linear.
func AlignFunctions(f1, f2 *ir.Function, opts Options) (*Result, error) {
	return AlignFunctionsCtx(context.Background(), f1, f2, opts)
}

// AlignFunctionsCtx is AlignFunctions with cancellation plumbed into the
// DP loops of both solvers. Linearizations and class vectors are
// computed transiently; batch callers should hold a Cache instead.
func AlignFunctionsCtx(ctx context.Context, f1, f2 *ir.Function, opts Options) (*Result, error) {
	it := NewInterner()
	return AlignSeqsCtx(ctx, NewSeq(f1, it), NewSeq(f2, it), opts)
}
