package align

// Mergeability-class interning. Mergeable is an equivalence-style
// predicate: whether two entries may be aligned depends only on a small
// structural key of each entry (opcode, result type, operand-type
// vector, and the operands that must remain literal constants after
// merging — comparison predicate, alloca type, callee identity, switch
// case values, struct GEP indices). The Interner folds that key into one
// integer per entry, computed once per function, so the O(n·m) inner
// loops of the alignment DPs compare two ints instead of re-walking
// types for every cell.
//
// The invariant, enforced by the differential property test in
// classes_test.go:
//
//	ClassesMatch(Class(a), Class(b)) == Mergeable(a, b)
//
// for every pair of entries interned by the same Interner.

import (
	"encoding/binary"
	"sync"

	"repro/internal/ir"
)

// ClassLabel is the class ID shared by every block label: labels always
// match labels and nothing else.
const ClassLabel int32 = 0

// classSolo marks entries that are mergeable with nothing — not even a
// structural twin. Mergeable rejects GEPs whose base is not a pointer or
// whose struct indices are not integer constants unconditionally, so two
// such entries must not match even when their keys agree.
const classSolo int32 = -1

// ClassesMatch reports whether entries of classes ca and cb may be
// aligned as a matching pair. It is exactly Mergeable on the underlying
// entries, at the cost of two integer comparisons.
func ClassesMatch(ca, cb int32) bool { return ca == cb && ca != classSolo }

// Interner assigns mergeability-class IDs. One Interner must be shared
// by every function participating in one alignment universe (a whole
// Optimize run): class IDs from different Interners are not comparable.
// All methods are safe for concurrent use.
type Interner struct {
	mu sync.Mutex
	// typeByPtr is the pointer-identity fast path over typeByKey; the ir
	// package shares singleton types, so most lookups end here.
	typeByPtr map[ir.Type]int32
	typeByKey map[string]int32
	// valueID tracks callee identity: Mergeable compares callees by
	// pointer equality, so every distinct callee value gets its own ID.
	valueID map[ir.Value]int32
	classes map[string]int32
	buf     []byte
	tbuf    []byte
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{
		typeByPtr: make(map[ir.Type]int32),
		typeByKey: make(map[string]int32),
		valueID:   make(map[ir.Value]int32),
		classes:   make(map[string]int32),
	}
}

// Class returns the mergeability class of one entry.
func (it *Interner) Class(e Entry) int32 {
	if e.IsLabel() {
		return ClassLabel
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.classLocked(e.Instr)
}

// Classes interns every entry of seq, appending the class IDs to dst
// (which may be nil) and returning the extended slice.
func (it *Interner) Classes(seq []Entry, dst []int32) []int32 {
	if cap(dst)-len(dst) < len(seq) {
		grown := make([]int32, len(dst), len(dst)+len(seq))
		copy(grown, dst)
		dst = grown
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	for _, e := range seq {
		if e.IsLabel() {
			dst = append(dst, ClassLabel)
			continue
		}
		dst = append(dst, it.classLocked(e.Instr))
	}
	return dst
}

// NumClasses returns the number of distinct instruction classes interned
// so far (labels and solo entries excluded).
func (it *Interner) NumClasses() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.classes)
}

// classLocked builds the structural key of x and interns it. Every field
// Mergeable inspects — and nothing else — goes into the key, so key
// equality coincides with mergeability.
func (it *Interner) classLocked(x *ir.Instruction) int32 {
	b := it.buf[:0]
	b = binary.AppendUvarint(b, uint64(x.Op()))
	b = binary.AppendUvarint(b, uint64(it.typeIDLocked(x.Type())))
	n := x.NumOperands()
	b = binary.AppendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		b = binary.AppendUvarint(b, uint64(it.typeIDLocked(x.Operand(i).Type())))
	}
	switch x.Op() {
	case ir.OpICmp, ir.OpFCmp:
		b = binary.AppendUvarint(b, uint64(x.Pred))
	case ir.OpAlloca:
		b = binary.AppendUvarint(b, uint64(it.typeIDLocked(x.AllocTy)))
	case ir.OpCall, ir.OpInvoke:
		b = binary.AppendUvarint(b, uint64(it.valueIDLocked(x.Callee())))
	case ir.OpSwitch:
		// Case values must be identical; the case count is already pinned
		// by the operand count ([v, default, c0, d0, ...]).
		for i := 2; i+1 < n; i += 2 {
			b = binary.AppendVarint(b, x.Operand(i).(*ir.ConstInt).V)
		}
	case ir.OpGEP:
		var solo bool
		b, solo = appendGEPKey(b, x)
		if solo {
			it.buf = b
			return classSolo
		}
	}
	it.buf = b
	id, ok := it.classes[string(b)]
	if !ok {
		// IDs start at 1: 0 is ClassLabel, -1 is classSolo.
		id = int32(len(it.classes)) + 1
		it.classes[string(b)] = id
	}
	return id
}

// appendGEPKey mirrors Mergeable's GEP walk: stepping through the
// indexed type, every index at a struct level must be an integer
// constant and goes into the key. A GEP failing the walk's structural
// requirements is solo — Mergeable rejects it against any partner.
// The walk of a mergeability partner is identical by induction: equal
// operand-type vectors pin the starting type, and equal constants at
// every struct level pin each step.
func appendGEPKey(b []byte, x *ir.Instruction) ([]byte, bool) {
	tx, ok := x.Operand(0).Type().(*ir.PointerType)
	if !ok {
		return b, true
	}
	cur := tx.Elem
	for i := 2; i < x.NumOperands(); i++ {
		if st, isStruct := cur.(*ir.StructType); isStruct {
			ix, okx := x.Operand(i).(*ir.ConstInt)
			if !okx {
				return b, true
			}
			b = binary.AppendVarint(b, ix.V)
			cur = st.Fields[ix.V]
			continue
		}
		if at, isArr := cur.(*ir.ArrayType); isArr {
			cur = at.Elem
		}
	}
	return b, false
}

// typeIDLocked interns t structurally. The pointer map shortcuts the
// common case (the ir package hands out singleton scalar types); the
// structural key matches TypesEqual exactly, so two structurally equal
// types always map to one ID.
func (it *Interner) typeIDLocked(t ir.Type) int32 {
	if id, ok := it.typeByPtr[t]; ok {
		return id
	}
	it.tbuf = appendTypeKey(it.tbuf[:0], t)
	id, ok := it.typeByKey[string(it.tbuf)]
	if !ok {
		id = int32(len(it.typeByKey)) + 1
		it.typeByKey[string(it.tbuf)] = id
	}
	it.typeByPtr[t] = id
	return id
}

func (it *Interner) valueIDLocked(v ir.Value) int32 {
	if id, ok := it.valueID[v]; ok {
		return id
	}
	id := int32(len(it.valueID)) + 1
	it.valueID[v] = id
	return id
}

// appendTypeKey writes an injective structural encoding of t: distinct
// kind tags plus varint length prefixes make the key prefix-free, so key
// equality is exactly TypesEqual.
func appendTypeKey(b []byte, t ir.Type) []byte {
	switch t := t.(type) {
	case *ir.VoidType:
		return append(b, 'v')
	case *ir.IntType:
		return binary.AppendUvarint(append(b, 'i'), uint64(t.Bits))
	case *ir.FloatType:
		return binary.AppendUvarint(append(b, 'f'), uint64(t.Bits))
	case *ir.PointerType:
		return appendTypeKey(append(b, 'p'), t.Elem)
	case *ir.ArrayType:
		b = binary.AppendUvarint(append(b, 'a'), uint64(t.Len))
		return appendTypeKey(b, t.Elem)
	case *ir.StructType:
		b = binary.AppendUvarint(append(b, 's'), uint64(len(t.Fields)))
		for _, f := range t.Fields {
			b = appendTypeKey(b, f)
		}
		return b
	case *ir.FuncType:
		b = append(b, 'F')
		if t.Variadic {
			b = append(b, '+')
		}
		b = appendTypeKey(b, t.Ret)
		b = binary.AppendUvarint(b, uint64(len(t.Params)))
		for _, p := range t.Params {
			b = appendTypeKey(b, p)
		}
		return b
	case *ir.LabelType:
		return append(b, 'l')
	}
	panic("align: unknown type in class key")
}
