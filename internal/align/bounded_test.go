package align

import (
	"context"
	"math/rand"
	"testing"
)

// TestBoundedMatchesUnbounded drives both solvers over random sequences
// with every floor from 1 past the optimum and checks the bounded DP's
// contract exactly: under the default zero gap penalty it returns
// ErrBelowBound precisely when the unbounded optimum falls below the
// floor, and otherwise reproduces the unbounded result — score, match
// counts and the pair list itself.
func TestBoundedMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		ea := randomEntrySeq(rng, rng.Intn(28))
		eb := randomEntrySeq(rng, rng.Intn(28))
		it := NewInterner()
		sa := Seq{Entries: ea, Classes: it.Classes(ea, nil)}
		sb := Seq{Entries: eb, Classes: it.Classes(eb, nil)}
		for _, linear := range []bool{false, true} {
			opts := DefaultOptions()
			opts.Linear = linear
			ref, err := AlignSeqsCtx(ctx, sa, sb, opts)
			if err != nil {
				t.Fatal(err)
			}
			for floor := int32(1); floor <= ref.Score+2; floor++ {
				res, err := AlignSeqsBounded(ctx, sa, sb, opts, floor)
				if err == ErrBelowBound {
					if ref.Score >= floor {
						t.Fatalf("trial %d linear=%v: floor %d aborted but optimum is %d",
							trial, linear, floor, ref.Score)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				if ref.Score < floor {
					t.Fatalf("trial %d linear=%v: floor %d should abort (optimum %d)",
						trial, linear, floor, ref.Score)
				}
				if res.Score != ref.Score || res.Matches != ref.Matches ||
					res.InstrMatches != ref.InstrMatches || len(res.Pairs) != len(ref.Pairs) {
					t.Fatalf("trial %d linear=%v floor %d: bounded result %d/%d/%d/%d pairs differs from unbounded %d/%d/%d/%d",
						trial, linear, floor,
						res.Score, res.Matches, res.InstrMatches, len(res.Pairs),
						ref.Score, ref.Matches, ref.InstrMatches, len(ref.Pairs))
				}
				for i := range res.Pairs {
					if res.Pairs[i].A != ref.Pairs[i].A || res.Pairs[i].B != ref.Pairs[i].B {
						t.Fatalf("trial %d linear=%v floor %d: pair %d differs", trial, linear, floor, i)
					}
				}
			}
		}
	}
}

// TestBoundIgnoredUnderGapPenalty: the per-row abort relies on rows
// being monotone in the column, which a non-zero gap penalty breaks —
// the floor must be ignored there, never mis-abort.
func TestBoundIgnoredUnderGapPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		ea := randomEntrySeq(rng, 12+rng.Intn(12))
		eb := randomEntrySeq(rng, 12+rng.Intn(12))
		it := NewInterner()
		sa := Seq{Entries: ea, Classes: it.Classes(ea, nil)}
		sb := Seq{Entries: eb, Classes: it.Classes(eb, nil)}
		opts := DefaultOptions()
		opts.GapPenalty = -1
		ref, err := AlignSeqsCtx(ctx, sa, sb, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := AlignSeqsBounded(ctx, sa, sb, opts, ref.Score+100)
		if err != nil {
			t.Fatalf("trial %d: floor must be ignored under gap penalty, got %v", trial, err)
		}
		if res.Score != ref.Score {
			t.Fatalf("trial %d: score %d != %d", trial, res.Score, ref.Score)
		}
	}
}
