package align

// alignReference is the pre-interning Needleman–Wunsch implementation:
// Mergeable re-evaluated per DP cell, matrices allocated per call, the
// backtrack built reversed and copied. It is kept verbatim as the
// executable specification the optimized solver is differentially
// tested against (TestAlignSeqsMatchesReference) and as the benchmark
// baseline the ≥3x acceptance bar is measured from
// (BenchmarkAlignPairReference).
func alignReference(a, b []Entry, opts Options) (*Result, error) {
	n, m := len(a), len(b)
	cells := int64(n+1) * int64(m+1)
	if opts.MaxCells > 0 && cells > opts.MaxCells {
		return nil, ErrTooLarge
	}
	score := make([]int32, cells)
	dir := make([]byte, cells)
	idx := func(i, j int) int64 { return int64(i)*int64(m+1) + int64(j) }

	gap := opts.GapPenalty
	for i := 1; i <= n; i++ {
		score[idx(i, 0)] = score[idx(i-1, 0)] - gap
		dir[idx(i, 0)] = dirUp
	}
	for j := 1; j <= m; j++ {
		score[idx(0, j)] = score[idx(0, j-1)] - gap
		dir[idx(0, j)] = dirLeft
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := score[idx(i-1, j)] - gap
			d := dirUp
			if s := score[idx(i, j-1)] - gap; s > best {
				best, d = s, dirLeft
			}
			if Mergeable(a[i-1], b[j-1]) {
				ms := opts.InstrMatchScore
				if a[i-1].IsLabel() {
					ms = opts.LabelMatchScore
				}
				if s := score[idx(i-1, j-1)] + ms; s >= best {
					best, d = s, dirDiag
				}
			}
			score[idx(i, j)] = best
			dir[idx(i, j)] = d
		}
	}

	res := &Result{
		Score:       score[idx(n, m)],
		MatrixBytes: cells * 5,
	}
	var rev []Pair
	for i, j := n, m; i > 0 || j > 0; {
		switch dir[idx(i, j)] {
		case dirDiag:
			rev = append(rev, Pair{A: &a[i-1], B: &b[j-1]})
			res.Matches++
			if !a[i-1].IsLabel() {
				res.InstrMatches++
			}
			i--
			j--
		case dirUp:
			rev = append(rev, Pair{A: &a[i-1]})
			i--
		case dirLeft:
			rev = append(rev, Pair{B: &b[j-1]})
			j--
		default:
			panic("align: corrupt backtrack matrix")
		}
	}
	res.Pairs = make([]Pair, len(rev))
	for i := range rev {
		res.Pairs[i] = rev[len(rev)-1-i]
	}
	return res, nil
}
