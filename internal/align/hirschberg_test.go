package align

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/irtext"
)

// TestLinearMatchesQuadraticScore: Hirschberg must produce the same
// optimal score as the quadratic DP on random sequences.
func TestLinearMatchesQuadraticScore(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		a := randomEntrySeq(rng, rng.Intn(24))
		b := randomEntrySeq(rng, rng.Intn(24))
		quad, err := Align(a, b, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lin, err := AlignLinear(a, b, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if quad.Score != lin.Score {
			t.Fatalf("trial %d: quadratic score %d, linear %d", trial, quad.Score, lin.Score)
		}
	}
}

// TestLinearAlignmentIsValid: the recovered path is a real alignment.
func TestLinearAlignmentIsValid(t *testing.T) {
	m := irtext.MustParse(irtext.Fig2Module)
	s1 := Linearize(m.FuncByName("F1"))
	s2 := Linearize(m.FuncByName("F2"))
	res, err := AlignLinear(s1, s2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	i, j := 0, 0
	for _, p := range res.Pairs {
		if p.A != nil {
			if p.A != &s1[i] {
				t.Fatalf("A side out of order at %d", i)
			}
			i++
		}
		if p.B != nil {
			if p.B != &s2[j] {
				t.Fatalf("B side out of order at %d", j)
			}
			j++
		}
		if p.IsMatch() && !Mergeable(*p.A, *p.B) {
			t.Fatalf("aligned non-mergeable pair")
		}
	}
	if i != len(s1) || j != len(s2) {
		t.Fatalf("consumed %d/%d and %d/%d", i, len(s1), j, len(s2))
	}
}

// TestLinearMemoryIsLinear: peak accounted memory grows linearly, not
// quadratically.
func TestLinearMemoryIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomEntrySeq(rng, 400)
	b := randomEntrySeq(rng, 400)
	quad, err := Align(a, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lin, err := AlignLinear(a, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if lin.MatrixBytes*20 > quad.MatrixBytes {
		t.Errorf("linear variant used %d bytes, quadratic %d — expected >20x gap",
			lin.MatrixBytes, quad.MatrixBytes)
	}
}

// TestLinearIdenticalFunctionsFullyMatch mirrors the quadratic test.
func TestLinearIdenticalFunctionsFullyMatch(t *testing.T) {
	m := irtext.MustParse(irtext.Fig2Module)
	f1 := m.FuncByName("F1")
	clone, _ := ir.CloneFunction(f1, "F1clone")
	opts := DefaultOptions()
	opts.Linear = true
	res, err := AlignFunctions(f1, clone, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if !p.IsMatch() {
			t.Fatalf("gap aligning a function against its clone")
		}
	}
}

// TestLinearEmptySides: degenerate inputs.
func TestLinearEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := randomEntrySeq(rng, 6)
	res, err := AlignLinear(nil, seq, DefaultOptions())
	if err != nil || len(res.Pairs) != 6 || res.Matches != 0 {
		t.Errorf("empty A: %v, %d pairs, %d matches", err, len(res.Pairs), res.Matches)
	}
	res, err = AlignLinear(seq, nil, DefaultOptions())
	if err != nil || len(res.Pairs) != 6 || res.Matches != 0 {
		t.Errorf("empty B: %v, %d pairs, %d matches", err, len(res.Pairs), res.Matches)
	}
}
