package align

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/irtext"
)

func fig2Funcs(t *testing.T) (*ir.Function, *ir.Function) {
	t.Helper()
	m, err := irtext.Parse(irtext.Fig2Module)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m.FuncByName("F1"), m.FuncByName("F2")
}

func TestLinearizeExcludesPhis(t *testing.T) {
	f1, f2 := fig2Funcs(t)
	s1 := Linearize(f1)
	s2 := Linearize(f2)
	// F1: 4 labels + 9 non-phi instructions; F2: 4 labels + 8 non-phi.
	if got, want := len(s1), 13; got != want {
		t.Errorf("len(linearize F1) = %d, want %d", got, want)
	}
	if got, want := len(s2), 12; got != want {
		t.Errorf("len(linearize F2) = %d, want %d", got, want)
	}
	for _, e := range append(s1, s2...) {
		if !e.IsLabel() && e.Instr.Op() == ir.OpPhi {
			t.Fatal("phi leaked into linearization")
		}
	}
}

func TestAlignFig2(t *testing.T) {
	f1, f2 := fig2Funcs(t)
	res, err := AlignFunctions(f1, f2, DefaultOptions())
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	// The motivating example aligns: start-call, icmp/??? (different
	// preds, not mergeable), body-call, end-call, ret, plus labels.
	wantInstr := map[string]bool{}
	for _, p := range res.Pairs {
		if p.IsMatch() && !p.A.IsLabel() {
			wantInstr[p.A.Instr.Op().String()] = true
		}
	}
	for _, op := range []string{"call", "ret", "br"} {
		if !wantInstr[op] {
			t.Errorf("expected a matched %s pair", op)
		}
	}
	// icmp slt vs icmp ne must NOT merge (different predicates).
	for _, p := range res.Pairs {
		if p.IsMatch() && !p.A.IsLabel() && p.A.Instr.Op() == ir.OpICmp {
			if p.A.Instr.Pred != p.B.Instr.Pred {
				t.Error("aligned icmps with different predicates")
			}
		}
	}
	if res.InstrMatches < 4 {
		t.Errorf("only %d instruction matches; expect at least start/body/end/ret", res.InstrMatches)
	}
	if res.MatrixBytes != int64(13+1)*int64(12+1)*5 {
		t.Errorf("MatrixBytes = %d", res.MatrixBytes)
	}
}

func TestAlignmentIsValid(t *testing.T) {
	f1, f2 := fig2Funcs(t)
	s1, s2 := Linearize(f1), Linearize(f2)
	res, err := Align(s1, s2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every entry appears exactly once, in order.
	i, j := 0, 0
	for _, p := range res.Pairs {
		if p.A != nil {
			if p.A != &s1[i] {
				t.Fatalf("A side out of order at %d", i)
			}
			i++
		}
		if p.B != nil {
			if p.B != &s2[j] {
				t.Fatalf("B side out of order at %d", j)
			}
			j++
		}
		if p.IsMatch() && !Mergeable(*p.A, *p.B) {
			t.Fatalf("aligned non-mergeable pair %v vs %v", p.A, p.B)
		}
	}
	if i != len(s1) || j != len(s2) {
		t.Fatalf("alignment consumed %d/%d and %d/%d entries", i, len(s1), j, len(s2))
	}
}

func TestIdenticalFunctionsFullyMatch(t *testing.T) {
	m := irtext.MustParse(irtext.Fig2Module)
	f1 := m.FuncByName("F1")
	clone, _ := ir.CloneFunction(f1, "F1clone")
	res, err := AlignFunctions(f1, clone, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if !p.IsMatch() {
			t.Fatalf("gap aligning a function against its clone: %v %v", p.A, p.B)
		}
	}
	if res.Matches != len(Linearize(f1)) {
		t.Errorf("matches = %d, want %d", res.Matches, len(Linearize(f1)))
	}
}

func TestMaxCells(t *testing.T) {
	f1, f2 := fig2Funcs(t)
	opts := DefaultOptions()
	opts.MaxCells = 10
	if _, err := AlignFunctions(f1, f2, opts); err != ErrTooLarge {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}

// bruteForceBestMatches computes the maximum weighted matching via
// exhaustive recursion (weights: instruction 2, label 1), for
// cross-checking the DP on small inputs.
func bruteForceBestMatches(a, b []Entry) int32 {
	var rec func(i, j int) int32
	rec = func(i, j int) int32 {
		if i == len(a) || j == len(b) {
			return 0
		}
		best := rec(i+1, j)
		if s := rec(i, j+1); s > best {
			best = s
		}
		if Mergeable(a[i], b[j]) {
			w := int32(2)
			if a[i].IsLabel() {
				w = 1
			}
			if s := rec(i+1, j+1) + w; s > best {
				best = s
			}
		}
		return best
	}
	return rec(0, 0)
}

// randomEntrySeq builds a random sequence of synthetic label/instruction
// entries with a small opcode alphabet so matches are plentiful.
func randomEntrySeq(rng *rand.Rand, n int) []Entry {
	ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd}
	out := make([]Entry, 0, n)
	a := ir.NewConstInt(ir.I32, 1)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			out = append(out, Entry{Label: ir.NewBlock("l")})
			continue
		}
		op := ops[rng.Intn(len(ops))]
		out = append(out, Entry{Instr: ir.NewBinary(op, "", a, a)})
	}
	return out
}

func TestAlignOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomEntrySeq(rng, rng.Intn(8))
		b := randomEntrySeq(rng, rng.Intn(8))
		res, err := Align(a, b, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceBestMatches(a, b)
		if res.Score != want {
			t.Fatalf("trial %d: DP score %d, brute force %d", trial, res.Score, want)
		}
	}
}

func TestAlignmentScoreSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := randomEntrySeq(rng, rng.Intn(10))
		b := randomEntrySeq(rng, rng.Intn(10))
		r1, err1 := Align(a, b, DefaultOptions())
		r2, err2 := Align(b, a, DefaultOptions())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Score != r2.Score {
			t.Fatalf("alignment score asymmetric: %d vs %d", r1.Score, r2.Score)
		}
	}
}

func TestMergeableRules(t *testing.T) {
	c1 := ir.NewConstInt(ir.I32, 1)
	add1 := ir.NewBinary(ir.OpAdd, "", c1, c1)
	add2 := ir.NewBinary(ir.OpAdd, "", c1, c1)
	sub := ir.NewBinary(ir.OpSub, "", c1, c1)
	cmpSlt := ir.NewICmp("", ir.PredSLT, c1, c1)
	cmpNe := ir.NewICmp("", ir.PredNE, c1, c1)
	cmpSlt2 := ir.NewICmp("", ir.PredSLT, c1, c1)
	wide := ir.NewBinary(ir.OpAdd, "", ir.NewConstInt(ir.I64, 1), ir.NewConstInt(ir.I64, 1))

	tests := []struct {
		name string
		a, b *ir.Instruction
		want bool
	}{
		{"same op", add1, add2, true},
		{"diff op", add1, sub, false},
		{"diff pred", cmpSlt, cmpNe, false},
		{"same pred", cmpSlt, cmpSlt2, true},
		{"diff width", add1, wide, false},
	}
	for _, tc := range tests {
		got := Mergeable(Entry{Instr: tc.a}, Entry{Instr: tc.b})
		if got != tc.want {
			t.Errorf("%s: Mergeable = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Labels only match labels.
	lab := Entry{Label: ir.NewBlock("x")}
	if Mergeable(lab, Entry{Instr: add1}) {
		t.Error("label matched instruction")
	}
	if !Mergeable(lab, Entry{Label: ir.NewBlock("y")}) {
		t.Error("labels must match")
	}
}
