package align

// Alignment-core benchmarks on the 2000-function synth suite (the same
// merge-rich, production-scale shape the finder benchmarks use). The
// acceptance bar of the allocation-free rework: BenchmarkAlignPair must
// run >= 3x faster than BenchmarkAlignPairReference (the retained
// pre-interning implementation in reference_test.go) and report 0
// allocs/op in steady state. CI uploads these as the BENCH_align.json
// trajectory artifact.

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/synth"
)

var (
	benchOnce  sync.Once
	benchFns   []*ir.Function
	benchPairs [][2]*ir.Function
)

// benchSuite generates the 2000-function suite once and derives the
// trial pairs the driver would align: the two leading members of every
// clone family (the synth generator names members <suite>_tNN_mK), i.e.
// pairs that are similar but not identical — the alignment-heavy part
// of a real run.
func benchSuite(b *testing.B) [][2]*ir.Function {
	b.Helper()
	benchOnce.Do(func() {
		m := synth.Generate(synth.Profile{
			Name: "align2k", Seed: 42, Funcs: 2000,
			MinSize: 6, AvgSize: 40, MaxSize: 220,
			CloneFrac: 0.4, FamilySize: 4, MutRate: 0.06,
			Loops: 0.5, Switches: 0.4,
		})
		benchFns = m.Defined()
		families := map[string][]*ir.Function{}
		for _, f := range benchFns {
			name := f.Name()
			cut := strings.LastIndex(name, "_m")
			if cut < 0 {
				continue
			}
			families[name[:cut]] = append(families[name[:cut]], f)
		}
		keys := make([]string, 0, len(families))
		for k, fam := range families {
			if len(fam) >= 2 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam := families[k]
			sort.Slice(fam, func(i, j int) bool { return fam[i].Name() < fam[j].Name() })
			benchPairs = append(benchPairs, [2]*ir.Function{fam[0], fam[1]})
		}
	})
	if len(benchPairs) < 50 {
		b.Fatalf("suite yielded only %d clone-family pairs", len(benchPairs))
	}
	return benchPairs
}

// BenchmarkAlignPair measures one steady-state candidate-pair alignment
// the way the driver runs it: sequences served by the per-run cache, DP
// slabs from the pools, the result reused. Steady state is 0 allocs/op.
func BenchmarkAlignPair(b *testing.B) {
	pairs := benchSuite(b)
	cache := NewCache()
	ctx := context.Background()
	opts := DefaultOptions()
	var res Result
	// Warm the cache and the pools so the timed loop is steady state.
	for _, p := range pairs {
		if err := AlignSeqsInto(ctx, cache.Seq(p[0]), cache.Seq(p[1]), opts, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if err := AlignSeqsInto(ctx, cache.Seq(p[0]), cache.Seq(p[1]), opts, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignPairReference is the pre-optimization baseline on the
// same pairs: per-pair linearization, Mergeable per DP cell, fresh
// matrices, reversed-copy backtrack.
func BenchmarkAlignPairReference(b *testing.B) {
	pairs := benchSuite(b)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := alignReference(Linearize(p[0]), Linearize(p[1]), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignPairLinear is the steady-state Hirschberg variant:
// same cached sequences, pooled row buffers.
func BenchmarkAlignPairLinear(b *testing.B) {
	pairs := benchSuite(b)
	cache := NewCache()
	ctx := context.Background()
	opts := DefaultOptions()
	opts.Linear = true
	var res Result
	for _, p := range pairs {
		if err := AlignSeqsInto(ctx, cache.Seq(p[0]), cache.Seq(p[1]), opts, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if err := AlignSeqsInto(ctx, cache.Seq(p[0]), cache.Seq(p[1]), opts, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassIntern measures interning the whole 2000-function suite
// from scratch: the one-time per-run cost the cache pays so that every
// subsequent trial compares ints.
func BenchmarkClassIntern(b *testing.B) {
	benchSuite(b)
	seqs := make([][]Entry, len(benchFns))
	for i, f := range benchFns {
		seqs[i] = Linearize(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewInterner()
		var classes []int32
		for _, seq := range seqs {
			classes = it.Classes(seq, classes[:0])
		}
	}
}
