package align

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/synth"
)

// auxModule exercises every auxiliary field Mergeable inspects: struct
// and array GEPs (equal and differing field indices), switches with
// equal and differing case sets, allocas of different element types,
// identical and differing callees, and comparison predicates.
const auxModule = `
declare i32 @ext(i32)
declare i32 @ext2(i32)

define i32 @gepA({i32, i64}* %s, [4 x i32]* %arr) {
e:
  %f0 = getelementptr {i32, i64}, {i32, i64}* %s, i64 0, i32 0
  %v0 = load i32, i32* %f0
  %a1 = getelementptr [4 x i32], [4 x i32]* %arr, i64 0, i64 1
  %v1 = load i32, i32* %a1
  %sum = add i32 %v0, %v1
  ret i32 %sum
}

define i32 @gepB({i32, i64}* %s, [4 x i32]* %arr) {
e:
  %f1 = getelementptr {i32, i64}, {i32, i64}* %s, i64 0, i32 1
  %w0 = load i64, i64* %f1
  %t = trunc i64 %w0 to i32
  %a2 = getelementptr [4 x i32], [4 x i32]* %arr, i64 0, i64 2
  %v2 = load i32, i32* %a2
  %sum = add i32 %t, %v2
  ret i32 %sum
}

define i32 @swA(i32 %x) {
e:
  %slot = alloca i32
  %dbl = alloca double
  store i32 %x, i32* %slot
  switch i32 %x, label %d [ i32 1, label %a i32 2, label %b ]
a:
  %ca = call i32 @ext(i32 %x)
  br label %d
b:
  %cb = call i32 @ext2(i32 %x)
  br label %d
d:
  %p = icmp slt i32 %x, 4
  %q = icmp ne i32 %x, 5
  ret i32 %x
}

define i32 @swB(i32 %x) {
e:
  %slot = alloca i32
  %oth = alloca i64
  store i32 %x, i32* %slot
  switch i32 %x, label %d [ i32 1, label %a i32 3, label %b ]
a:
  %ca = call i32 @ext(i32 %x)
  br label %d
b:
  %cb = call i32 @ext(i32 %x)
  br label %d
d:
  %p = icmp slt i32 %x, 4
  %q = icmp sgt i32 %x, 5
  ret i32 %x
}
`

// propertyEntries gathers the linearized entries and class vectors of
// every defined function across the given modules under one interner.
func propertyEntries(t *testing.T, mods []*ir.Module) ([]Entry, []int32) {
	t.Helper()
	it := NewInterner()
	var entries []Entry
	var classes []int32
	for _, m := range mods {
		for _, f := range m.Defined() {
			seq := Linearize(f)
			entries = append(entries, seq...)
			classes = it.Classes(seq, classes)
		}
	}
	return entries, classes
}

func propertyModules(t *testing.T) []*ir.Module {
	t.Helper()
	mods := []*ir.Module{
		irtext.MustParse(irtext.Fig2Module),
		irtext.MustParse(auxModule),
		synth.Generate(synth.Profile{
			Name: "propa", Seed: 7, Funcs: 24,
			MinSize: 6, AvgSize: 28, MaxSize: 80,
			CloneFrac: 0.5, FamilySize: 3, MutRate: 0.1,
			Loops: 0.5, Switches: 0.6, Floats: 0.4,
		}),
		synth.Generate(synth.Profile{
			Name: "propb", Seed: 11, Funcs: 16,
			MinSize: 6, AvgSize: 24, MaxSize: 60,
			CloneFrac: 0.3, FamilySize: 2, MutRate: 0.2,
			Loops: 0.7, ExcRate: 0.4, Switches: 0.3,
		}),
	}
	return mods
}

// TestClassesMatchEquivalence is the differential property test of the
// interner: over every pair of entries drawn from the synth suites and
// the handcrafted auxiliary module, class-ID matching must decide
// exactly Mergeable. Any auxiliary field the interner forgot to fold
// into the key (or folded too coarsely) shows up as a counterexample.
func TestClassesMatchEquivalence(t *testing.T) {
	entries, classes := propertyEntries(t, propertyModules(t))
	if len(entries) < 500 {
		t.Fatalf("property universe too small: %d entries", len(entries))
	}
	checked := 0
	for i := range entries {
		for j := i; j < len(entries); j++ {
			want := Mergeable(entries[i], entries[j])
			got := ClassesMatch(classes[i], classes[j])
			if got != want {
				t.Fatalf("entry %d (%v, class %d) vs %d (%v, class %d): ClassesMatch=%v, Mergeable=%v",
					i, entries[i], classes[i], j, entries[j], classes[j], got, want)
			}
			checked++
		}
	}
	t.Logf("checked %d entry pairs over %d entries", checked, len(entries))
}

// TestClassesMatchSymmetricSpec cross-checks the handcrafted cases of
// TestMergeableRules through the interner.
func TestClassesMatchSymmetricSpec(t *testing.T) {
	c1 := ir.NewConstInt(ir.I32, 1)
	it := NewInterner()
	add1 := Entry{Instr: ir.NewBinary(ir.OpAdd, "", c1, c1)}
	add2 := Entry{Instr: ir.NewBinary(ir.OpAdd, "", c1, c1)}
	sub := Entry{Instr: ir.NewBinary(ir.OpSub, "", c1, c1)}
	cmpSlt := Entry{Instr: ir.NewICmp("", ir.PredSLT, c1, c1)}
	cmpNe := Entry{Instr: ir.NewICmp("", ir.PredNE, c1, c1)}
	lab := Entry{Label: ir.NewBlock("x")}
	lab2 := Entry{Label: ir.NewBlock("y")}
	cases := []struct {
		name string
		a, b Entry
	}{
		{"same add", add1, add2},
		{"diff op", add1, sub},
		{"diff pred", cmpSlt, cmpNe},
		{"label vs instr", lab, add1},
		{"labels", lab, lab2},
	}
	for _, tc := range cases {
		want := Mergeable(tc.a, tc.b)
		got := ClassesMatch(it.Class(tc.a), it.Class(tc.b))
		if got != want {
			t.Errorf("%s: ClassesMatch=%v, Mergeable=%v", tc.name, got, want)
		}
	}
}

// samePairs requires two results to hold the bit-identical alignment:
// same score, same counts, and the same entry pointers pair by pair.
func samePairs(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.Score != want.Score || got.Matches != want.Matches ||
		got.InstrMatches != want.InstrMatches || got.MatrixBytes != want.MatrixBytes {
		t.Fatalf("%s: header differs: got (s=%d m=%d im=%d mb=%d), want (s=%d m=%d im=%d mb=%d)",
			tag, got.Score, got.Matches, got.InstrMatches, got.MatrixBytes,
			want.Score, want.Matches, want.InstrMatches, want.MatrixBytes)
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(got.Pairs), len(want.Pairs))
	}
	for k := range got.Pairs {
		if got.Pairs[k].A != want.Pairs[k].A || got.Pairs[k].B != want.Pairs[k].B {
			t.Fatalf("%s: pair %d differs: got (%v,%v), want (%v,%v)",
				tag, k, got.Pairs[k].A, got.Pairs[k].B, want.Pairs[k].A, want.Pairs[k].B)
		}
	}
}

// TestAlignSeqsMatchesReference differentially tests the optimized
// solver (interned classes, pooled slabs, in-place backtrack, reused
// results) against the retained reference implementation on every
// function pair of a mixed synth module: the recovered alignment must be
// bit-identical, which is what keeps the committed merge set stable.
func TestAlignSeqsMatchesReference(t *testing.T) {
	m := synth.Generate(synth.Profile{
		Name: "refdiff", Seed: 21, Funcs: 14,
		MinSize: 6, AvgSize: 30, MaxSize: 90,
		CloneFrac: 0.5, FamilySize: 2, MutRate: 0.08,
		Loops: 0.5, Switches: 0.5, Floats: 0.3,
	})
	funcs := m.Defined()
	cache := NewCache()
	var res Result
	ctx := context.Background()
	pairs := 0
	for i, f1 := range funcs {
		s1 := cache.Seq(f1)
		for _, f2 := range funcs[i+1:] {
			s2 := cache.Seq(f2)
			want, err := alignReference(s1.Entries, s2.Entries, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := AlignSeqsInto(ctx, s1, s2, DefaultOptions(), &res); err != nil {
				t.Fatal(err)
			}
			samePairs(t, f1.Name()+"+"+f2.Name(), &res, want)
			pairs++
		}
	}
	t.Logf("compared %d function pairs", pairs)
}

// TestCloneSeqMatchesOriginal: aligning a cloned pair through CloneSeq
// (the parallel planner's path: clone entries, original class vectors)
// must reproduce the alignment of the originals index for index.
func TestCloneSeqMatchesOriginal(t *testing.T) {
	m := irtext.MustParse(irtext.Fig2Module + auxModule)
	cache := NewCache()
	funcs := m.Defined()
	for i, f1 := range funcs {
		for _, f2 := range funcs[i+1:] {
			orig, err := cache.AlignFunctionsCtx(context.Background(), f1, f2, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			c1, _ := ir.CloneFunction(f1, f1.Name()+".c")
			c2, _ := ir.CloneFunction(f2, f2.Name()+".c")
			s1, s2 := cache.CloneSeq(c1, f1), cache.CloneSeq(c2, f2)
			cloned, err := AlignSeqsCtx(context.Background(), s1, s2, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if cloned.Score != orig.Score || len(cloned.Pairs) != len(orig.Pairs) {
				t.Fatalf("%s+%s: clone alignment diverges: score %d vs %d, %d vs %d pairs",
					f1.Name(), f2.Name(), cloned.Score, orig.Score, len(cloned.Pairs), len(orig.Pairs))
			}
			for k := range cloned.Pairs {
				if (cloned.Pairs[k].A == nil) != (orig.Pairs[k].A == nil) ||
					(cloned.Pairs[k].B == nil) != (orig.Pairs[k].B == nil) {
					t.Fatalf("%s+%s: pair %d shape differs", f1.Name(), f2.Name(), k)
				}
			}
		}
	}
}

// TestCacheInvalidate: a cached sequence must be recomputed after
// Invalidate, and the stats must reflect hits and misses.
func TestCacheInvalidate(t *testing.T) {
	m := irtext.MustParse(irtext.Fig2Module)
	f := m.FuncByName("F1")
	cache := NewCache()
	s1 := cache.Seq(f)
	s2 := cache.Seq(f)
	if &s1.Entries[0] != &s2.Entries[0] {
		t.Fatal("second Seq did not hit the cache")
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Functions != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 function", st)
	}
	cache.Invalidate(f)
	if got := cache.Stats().Functions; got != 0 {
		t.Fatalf("functions after invalidate = %d", got)
	}
	s3 := cache.Seq(f)
	if &s3.Entries[0] == &s1.Entries[0] {
		t.Fatal("Seq after Invalidate returned the stale sequence")
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}
