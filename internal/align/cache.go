package align

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// Cache memoizes linearizations and mergeability-class vectors per
// function for the lifetime of one merging run. Candidate pairing is
// quadratic in the candidate lists — the same function is aligned
// against up to threshold partners, and under speculative planning its
// clones are aligned in parallel workers — so without the cache every
// trial re-linearizes and re-walks types. With it, each function is
// linearized and interned exactly once; trials reduce to the DP itself.
//
// The cache must be invalidated (Invalidate) whenever a function's body
// changes — the driver does so when a commit replaces a function with a
// thunk. All methods are safe for concurrent use.
type Cache struct {
	in   *Interner
	mu   sync.RWMutex
	seqs map[*ir.Function]Seq

	hits, misses atomic.Int64
}

// NewCache returns an empty cache with its own class universe.
func NewCache() *Cache {
	return &Cache{in: NewInterner(), seqs: make(map[*ir.Function]Seq)}
}

// Seq returns f's linearization and class vector, computing and
// memoizing them on first use.
func (c *Cache) Seq(f *ir.Function) Seq {
	c.mu.RLock()
	s, ok := c.seqs[f]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return s
	}
	c.misses.Add(1)
	s = NewSeq(f, c.in)
	c.mu.Lock()
	if prior, ok := c.seqs[f]; ok {
		// A concurrent caller won the race; use its copy so every trial
		// of f shares one entries slice.
		c.mu.Unlock()
		return prior
	}
	c.seqs[f] = s
	c.mu.Unlock()
	return s
}

// CloneSeq returns the sequence for clone, a structural copy of orig
// produced by ir.CloneFunction: the clone is linearized (its entries are
// its own), but the class vector is shared with orig's cached one.
// Cloning preserves block and instruction order, opcodes, types,
// auxiliary constants and module-level callee identity, so the copied
// vector decides mergeability for the clone exactly as orig's does —
// and, crucially, a pair of clones reproduces the alignment of the pair
// of originals bit for bit. The clone itself is not cached: trial clones
// die with their scratch module.
func (c *Cache) CloneSeq(clone, orig *ir.Function) Seq {
	classes := c.Seq(orig).Classes
	entries := Linearize(clone)
	if len(entries) != len(classes) {
		panic("align: clone linearization diverges from its original")
	}
	return Seq{Entries: entries, Classes: classes}
}

// ClassVector returns the mergeability-class vector of f (labels map to
// ClassLabel). The slice is shared with the cache; callers must not
// mutate it.
func (c *Cache) ClassVector(f *ir.Function) []int32 {
	return c.Seq(f).Classes
}

// Invalidate drops f's cached sequence. Must be called when f's body
// changes (e.g. it was replaced by a thunk); it also releases the
// entries' instruction pointers for the GC.
func (c *Cache) Invalidate(f *ir.Function) {
	c.mu.Lock()
	delete(c.seqs, f)
	c.mu.Unlock()
}

// AlignFunctionsCtx aligns f1 and f2 using cached sequences.
func (c *Cache) AlignFunctionsCtx(ctx context.Context, f1, f2 *ir.Function, opts Options) (*Result, error) {
	return AlignSeqsCtx(ctx, c.Seq(f1), c.Seq(f2), opts)
}

// CacheStats is a snapshot of a cache's effectiveness, reported by the
// driver per run.
type CacheStats struct {
	// Hits and Misses count Seq lookups served from the cache vs
	// computed (a miss linearizes and interns one function).
	Hits, Misses int64
	// Functions is the number of currently cached linearizations.
	Functions int
	// Classes is the number of distinct instruction mergeability
	// classes interned so far.
	Classes int
}

// Stats returns a consistent-enough snapshot for reporting.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.seqs)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Functions: n,
		Classes:   c.in.NumClasses(),
	}
}
