package align

// Pooled DP storage. The score/direction slabs of the quadratic DP and
// the row buffers of Hirschberg's linear-space variant dominate the
// allocation profile of a merging run: every candidate-pair trial used
// to allocate (and garbage) its own matrices. The pools below recycle
// them across trials and across the planner's workers (sync.Pool is
// concurrency-safe and per-P sharded), bucketed by power-of-two capacity
// class so a recycled slab never has less capacity than requested and at
// most 2x more.
//
// Pooling does not change the MatrixBytes accounting: Result.MatrixBytes
// keeps reporting the logical DP footprint (cells x 5 bytes), which is
// the quantity the paper's Figure 22 measures. See DESIGN.md "Alignment
// performance" for how the two relate.

import "sync"

// maxPoolClass bounds the pooled capacity classes; slabs above 2^38
// cells (more than the address space can realistically back) bypass the
// pools entirely.
const maxPoolClass = 38

// dpSlab is one pooled quadratic-DP allocation: 4 score bytes and 1
// direction byte per cell.
type dpSlab struct {
	score []int32
	dir   []byte
}

var slabPools [maxPoolClass + 1]sync.Pool

// poolClass returns the smallest c with 2^c >= n.
func poolClass(n int64) int {
	c := 0
	for int64(1)<<c < n {
		c++
	}
	return c
}

// getSlab returns a slab with len(score) == len(dir) == cells. Score
// cell 0 is zeroed — the only cell the DP reads without writing first
// (the backtrack never reads dir cell 0).
func getSlab(cells int64) *dpSlab {
	c := poolClass(cells)
	if c > maxPoolClass {
		return &dpSlab{score: make([]int32, cells), dir: make([]byte, cells)}
	}
	if s, ok := slabPools[c].Get().(*dpSlab); ok {
		s.score = s.score[:cells]
		s.dir = s.dir[:cells]
		s.score[0] = 0
		return s
	}
	capacity := int64(1) << c
	return &dpSlab{
		score: make([]int32, cells, capacity),
		dir:   make([]byte, cells, capacity),
	}
}

// putSlab recycles s. Slabs above the pooled classes are dropped for the
// GC to reclaim.
func putSlab(s *dpSlab) {
	c := poolClass(int64(cap(s.score)))
	if int64(1)<<c != int64(cap(s.score)) || c > maxPoolClass {
		return
	}
	slabPools[c].Put(s)
}

// dpRow is one pooled Hirschberg row buffer. The indirection through a
// struct keeps Get/Put allocation-free (a bare slice would escape into
// the pool's interface value on every Put).
type dpRow struct{ row []int32 }

var rowPools [maxPoolClass + 1]sync.Pool

// getRow returns a row buffer with len(row) == n. Element 0 is zeroed —
// the one element Hirschberg's row initialisation reads without writing
// first.
func getRow(n int) *dpRow {
	c := poolClass(int64(n))
	if c > maxPoolClass {
		return &dpRow{row: make([]int32, n)}
	}
	if r, ok := rowPools[c].Get().(*dpRow); ok {
		r.row = r.row[:n]
		r.row[0] = 0
		return r
	}
	return &dpRow{row: make([]int32, n, 1<<c)}
}

// putRow recycles a row buffer obtained from getRow.
func putRow(r *dpRow) {
	c := poolClass(int64(cap(r.row)))
	if int64(1)<<c != int64(cap(r.row)) || c > maxPoolClass {
		return
	}
	rowPools[c].Put(r)
}
