package align

import "context"

// Hirschberg's linear-space variant of the alignment. The paper's §5.5
// identifies the quadratic DP matrix as the dominant memory cost of
// function merging (6.5 GB for 403.gcc under FMSA); this divide-and-
// conquer formulation produces the same optimal score using O(n+m)
// memory at the cost of roughly doubling the work. It is offered as an
// extension (Options via AlignLinear / driver ablation benchmarks): with
// it, even demotion-inflated alignments stay small, trading the paper's
// memory argument for extra time.

// AlignLinear computes an optimal global alignment of a and b with the
// same scoring as Align but in linear space. The alignment score equals
// Align's; the recovered path may differ among co-optimal alignments.
func AlignLinear(a, b []Entry, opts Options) (*Result, error) {
	return AlignLinearCtx(context.Background(), a, b, opts)
}

// AlignLinearCtx is AlignLinear with cancellation: the context is polled
// between DP rows of every divide-and-conquer subproblem.
func AlignLinearCtx(ctx context.Context, a, b []Entry, opts Options) (*Result, error) {
	h := &hirschberg{opts: opts, ctx: ctx}
	pairs := h.solve(a, b)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Pairs: pairs, MatrixBytes: h.peakBytes}
	for _, p := range pairs {
		if p.IsMatch() {
			res.Matches++
			if !p.A.IsLabel() {
				res.InstrMatches++
			}
			if p.A.IsLabel() {
				res.Score += opts.LabelMatchScore
			} else {
				res.Score += opts.InstrMatchScore
			}
		} else {
			res.Score -= opts.GapPenalty
		}
	}
	return res, nil
}

type hirschberg struct {
	opts      Options
	ctx       context.Context
	peakBytes int64
}

// cancelled reports whether the alignment's context has been cancelled;
// the recursion unwinds with a partial path that AlignLinearCtx discards.
func (h *hirschberg) cancelled() bool { return h.ctx.Err() != nil }

func (h *hirschberg) matchScore(a, b Entry) (int32, bool) {
	if !Mergeable(a, b) {
		return 0, false
	}
	if a.IsLabel() {
		return h.opts.LabelMatchScore, true
	}
	return h.opts.InstrMatchScore, true
}

// lastRow returns the final DP row aligning a against b (forward
// direction), i.e. row[j] = best score of aligning all of a with b[:j].
func (h *hirschberg) lastRow(a, b []Entry, reversed bool) []int32 {
	m := len(b)
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	h.account(int64(2 * (m + 1) * 4))
	gap := h.opts.GapPenalty
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] - gap
	}
	for i := 1; i <= len(a); i++ {
		if i&cancelStride == 0 && h.cancelled() {
			return prev
		}
		cur[0] = prev[0] - gap
		ai := a[i-1]
		if reversed {
			ai = a[len(a)-i]
		}
		for j := 1; j <= m; j++ {
			bj := b[j-1]
			if reversed {
				bj = b[m-j]
			}
			best := prev[j] - gap
			if s := cur[j-1] - gap; s > best {
				best = s
			}
			if ms, ok := h.matchScore(ai, bj); ok {
				if s := prev[j-1] + ms; s > best {
					best = s
				}
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev
}

func (h *hirschberg) account(bytes int64) {
	if bytes > h.peakBytes {
		h.peakBytes = bytes
	}
}

func (h *hirschberg) solve(a, b []Entry) []Pair {
	if h.cancelled() {
		return nil
	}
	switch {
	case len(a) == 0:
		out := make([]Pair, len(b))
		for j := range b {
			out[j] = Pair{B: &b[j]}
		}
		return out
	case len(b) == 0:
		out := make([]Pair, len(a))
		for i := range a {
			out[i] = Pair{A: &a[i]}
		}
		return out
	case len(a) == 1 || len(b) == 1:
		// Small enough for the quadratic solver; its matrix is O(n+m).
		res, err := Align(a, b, h.opts)
		if err != nil {
			panic("align: base-case alignment cannot fail")
		}
		h.account(res.MatrixBytes)
		return res.Pairs
	}
	mid := len(a) / 2
	fwd := h.lastRow(a[:mid], b, false)
	bwd := h.lastRow(a[mid:], b, true)
	split, best := 0, int32(-1<<30)
	for j := 0; j <= len(b); j++ {
		if s := fwd[j] + bwd[len(b)-j]; s > best {
			best = s
			split = j
		}
	}
	left := h.solve(a[:mid], b[:split])
	right := h.solve(a[mid:], b[split:])
	return append(left, right...)
}
