package align

import (
	"context"
	"sync"
)

// Hirschberg's linear-space variant of the alignment. The paper's §5.5
// identifies the quadratic DP matrix as the dominant memory cost of
// function merging (6.5 GB for 403.gcc under FMSA); this divide-and-
// conquer formulation produces the same optimal score using O(n+m)
// memory at the cost of roughly doubling the work. It is offered as an
// extension (Options via AlignLinear / driver ablation benchmarks): with
// it, even demotion-inflated alignments stay small, trading the paper's
// memory argument for extra time.
//
// Like the quadratic solver, the inner loops compare interned class IDs
// and the row buffers come from the shared pools, so steady-state
// alignment does no per-pair allocation beyond the recovered path.

// AlignLinear computes an optimal global alignment of a and b with the
// same scoring as Align but in linear space. The alignment score equals
// Align's; the recovered path may differ among co-optimal alignments.
func AlignLinear(a, b []Entry, opts Options) (*Result, error) {
	return AlignLinearCtx(context.Background(), a, b, opts)
}

// AlignLinearCtx is AlignLinear with cancellation: the context is polled
// between DP rows of every divide-and-conquer subproblem.
func AlignLinearCtx(ctx context.Context, a, b []Entry, opts Options) (*Result, error) {
	it := NewInterner()
	sa := Seq{Entries: a, Classes: it.Classes(a, nil)}
	sb := Seq{Entries: b, Classes: it.Classes(b, nil)}
	res := &Result{}
	if err := alignLinearSeqs(ctx, sa, sb, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// alignLinearSeqs runs the divide-and-conquer solver over interned
// sequences, accumulating the path directly into res.Pairs (reusing its
// capacity) and deriving score and match counts from the path.
func alignLinearSeqs(ctx context.Context, a, b Seq, opts Options, res *Result) error {
	// MaxCells caps the quadratic solver's memory; the linear solver
	// needs O(n+m) regardless, so the cap is cleared rather than letting
	// an O(n+m) base case trip it.
	opts.MaxCells = 0
	// Bounded mode: one forward linear-space pass with the quadratic
	// solver's per-row abort decides the floor before the
	// divide-and-conquer starts (whose recursion has no single frontier
	// to bound). The scan computes the exact optimal score when it runs
	// to completion, so a non-aborting pass still settles score <
	// MinScore without a backtrack.
	if ms := opts.MinScore; ms > 0 && opts.GapPenalty == 0 {
		below, err := boundedScan(ctx, a.Entries, b.Entries, a.Classes, b.Classes, opts, ms)
		if err != nil {
			return err
		}
		if below {
			return ErrBelowBound
		}
		opts.MinScore = 0 // floor settled; solve runs unbounded
	}
	h, _ := hirschbergPool.Get().(*hirschberg)
	if h == nil {
		h = &hirschberg{}
	}
	h.opts, h.ctx, h.peakBytes = opts, ctx, 0
	h.out = res.buf[:0]
	h.solve(a.Entries, b.Entries, a.Classes, b.Classes)
	out, peak := h.out, h.peakBytes
	// The output buffer and accounting become the caller's; only the
	// scratch state (base-case result, and the struct itself) is
	// recycled. The scratch pair buffer is cleared — its Entry pointers
	// would otherwise pin the last run's instruction graph inside the
	// global pool — and nothing on h may be read past this Put: another
	// goroutine may already be reusing it.
	scr := h.scratch.buf[:cap(h.scratch.buf)]
	for i := range scr {
		scr[i] = Pair{}
	}
	h.scratch.Pairs = nil
	h.out, h.ctx = nil, nil
	hirschbergPool.Put(h)
	res.buf = out[:0]
	if err := ctx.Err(); err != nil {
		return err
	}
	res.Pairs = out
	res.MatrixBytes = peak
	for _, p := range res.Pairs {
		if p.IsMatch() {
			res.Matches++
			if p.A.IsLabel() {
				res.Score += opts.LabelMatchScore
			} else {
				res.InstrMatches++
				res.Score += opts.InstrMatchScore
			}
		} else {
			res.Score -= opts.GapPenalty
		}
	}
	return nil
}

// boundedScan runs one forward DP pass over pooled rows with the
// quadratic solver's per-row abort: it reports whether the optimal
// score of aligning a and b is provably below minScore. Requires
// GapPenalty == 0 (the rows must be monotone for cur[m] to dominate
// the row). When the pass completes, cur[m] is the exact optimal
// score, so the verdict is precise, not just conservative.
func boundedScan(ctx context.Context, a, b []Entry, ca, cb []int32, opts Options, minScore int32) (below bool, err error) {
	rem := classPotential(ca, opts)
	if rem < minScore || classPotential(cb, opts) < minScore {
		return true, nil
	}
	m := len(b)
	pr := getRow(m + 1)
	cr := getRow(m + 1)
	defer putRow(pr)
	defer putRow(cr)
	prev, cur := pr.row, cr.row
	for j := 1; j <= m; j++ {
		prev[j] = 0 // gap is 0, so the border row is all zeros
	}
	for i := 1; i <= len(a); i++ {
		if i&cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		cur[0] = 0
		cai := ca[i-1]
		ms := opts.InstrMatchScore
		if cai == ClassLabel {
			ms = opts.LabelMatchScore
		}
		matchable := cai != classSolo
		for j := 1; j <= m; j++ {
			best := prev[j]
			if s := cur[j-1]; s > best {
				best = s
			}
			if matchable && cai == cb[j-1] {
				if s := prev[j-1] + ms; s > best {
					best = s
				}
			}
			cur[j] = best
		}
		if matchable {
			rem -= ms
		}
		if cur[m]+rem < minScore {
			return true, nil
		}
		prev, cur = cur, prev
	}
	return false, nil
}

// hirschbergPool recycles solver scratch state (most usefully the
// base-case Result and its pair buffer) across alignments.
var hirschbergPool sync.Pool

type hirschberg struct {
	opts      Options
	ctx       context.Context
	peakBytes int64
	out       []Pair
	// scratch is the reusable quadratic-solver result for the O(n+m)
	// base cases.
	scratch Result
}

// cancelled reports whether the alignment's context has been cancelled;
// the recursion unwinds with a partial path that alignLinearSeqs
// discards.
func (h *hirschberg) cancelled() bool { return h.ctx.Err() != nil }

// lastRow returns the final DP row aligning a against b (forward
// direction), i.e. row[j] = best score of aligning all of a with b[:j].
// The returned buffer comes from the row pool; the caller releases it
// with putRow.
func (h *hirschberg) lastRow(a, b []Entry, ca, cb []int32, reversed bool) *dpRow {
	m := len(b)
	pr := getRow(m + 1)
	cr := getRow(m + 1)
	h.account(int64(2 * (m + 1) * 4))
	prev, cur := pr.row, cr.row
	gap := h.opts.GapPenalty
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] - gap
	}
	for i := 1; i <= len(a); i++ {
		if i&cancelStride == 0 && h.cancelled() {
			break
		}
		cur[0] = prev[0] - gap
		cai := ca[i-1]
		if reversed {
			cai = ca[len(a)-i]
		}
		ms := h.opts.InstrMatchScore
		if cai == ClassLabel {
			ms = h.opts.LabelMatchScore
		}
		matchable := cai != classSolo
		for j := 1; j <= m; j++ {
			cbj := cb[j-1]
			if reversed {
				cbj = cb[m-j]
			}
			best := prev[j] - gap
			if s := cur[j-1] - gap; s > best {
				best = s
			}
			if matchable && cai == cbj {
				if s := prev[j-1] + ms; s > best {
					best = s
				}
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	pr.row, cr.row = prev, cur
	putRow(cr)
	return pr
}

func (h *hirschberg) account(bytes int64) {
	if bytes > h.peakBytes {
		h.peakBytes = bytes
	}
}

// solve appends the optimal path for (a, b) to h.out, left to right.
func (h *hirschberg) solve(a, b []Entry, ca, cb []int32) {
	if h.cancelled() {
		return
	}
	switch {
	case len(a) == 0:
		for j := range b {
			h.out = append(h.out, Pair{B: &b[j]})
		}
		return
	case len(b) == 0:
		for i := range a {
			h.out = append(h.out, Pair{A: &a[i]})
		}
		return
	case len(a) == 1 || len(b) == 1:
		// Small enough for the quadratic solver; its matrix is O(n+m).
		h.scratch.reset()
		if err := alignQuadratic(h.ctx, a, b, ca, cb, h.opts, &h.scratch); err != nil {
			// The base case cannot exceed MaxCells (no cap applies here);
			// only cancellation reaches this, and the partial path is
			// discarded by alignLinearSeqs.
			return
		}
		h.account(h.scratch.MatrixBytes)
		h.out = append(h.out, h.scratch.Pairs...)
		return
	}
	mid := len(a) / 2
	fwd := h.lastRow(a[:mid], b, ca[:mid], cb, false)
	bwd := h.lastRow(a[mid:], b, ca[mid:], cb, true)
	split, best := 0, int32(-1<<30)
	for j := 0; j <= len(b); j++ {
		if s := fwd.row[j] + bwd.row[len(b)-j]; s > best {
			best = s
			split = j
		}
	}
	putRow(fwd)
	putRow(bwd)
	h.solve(a[:mid], b[:split], ca[:mid], cb[:split])
	h.solve(a[mid:], b[split:], ca[mid:], cb[split:])
}
