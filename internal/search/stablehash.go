package search

import (
	"math"

	"repro/internal/ir"
)

// Stable structural hashing, in the spirit of the optimistic global
// function merging hash: two functions that differ only in the names of
// their locals (registers, blocks, parameters) hash equal. Locals are
// canonicalized GVN-style by a local value numbering — parameters by
// position, blocks by position, instruction results by definition order —
// so the hash sees operand *shape*, never names. Constants hash
// structurally, globals and callees by symbol name, and a reference to
// the enclosing function hashes as "self" so mutually-renamed recursive
// clones still collide.
//
// Hash equality is a filter, never a verdict: callers confirm candidate
// duplicates with EqualFunctions before acting on them.

// fnv-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hasher struct{ h uint64 }

func newHasher() hasher { return hasher{h: fnvOffset} }

func (s *hasher) word(x uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= x & 0xff
		s.h *= fnvPrime
		x >>= 8
	}
}

func (s *hasher) str(str string) {
	for i := 0; i < len(str); i++ {
		s.h ^= uint64(str[i])
		s.h *= fnvPrime
	}
	s.word(uint64(len(str)))
}

// Operand tags: the leading word of every operand hash names the operand
// class, so (e.g.) argument 0 can never collide with local 0.
const (
	tagLocal uint64 = iota + 0x517a
	tagArg
	tagBlock
	tagConstInt
	tagConstFloat
	tagConstNull
	tagUndef
	tagGlobal
	tagFunc
	tagSelf
	tagOther
)

// valueNumbers assigns the local value numbering of f: parameters and
// blocks by position, instruction results by definition order.
func valueNumbers(f *ir.Function) map[ir.Value]uint64 {
	vn := make(map[ir.Value]uint64, f.NumInstrs()+len(f.Params())+len(f.Blocks))
	for i, p := range f.Params() {
		vn[p] = uint64(i)
	}
	for i, b := range f.Blocks {
		vn[b] = uint64(i)
	}
	n := uint64(0)
	f.Instrs(func(in *ir.Instruction) bool {
		vn[in] = n
		n++
		return true
	})
	return vn
}

// hashOperand folds one operand of an instruction of f into s.
func hashOperand(s *hasher, f *ir.Function, vn map[ir.Value]uint64, op ir.Value) {
	switch v := op.(type) {
	case *ir.Instruction:
		s.word(tagLocal)
		s.word(vn[v])
	case *ir.Argument:
		s.word(tagArg)
		s.word(vn[v])
	case *ir.Block:
		s.word(tagBlock)
		s.word(vn[v])
	case *ir.ConstInt:
		s.word(tagConstInt)
		s.str(v.Type().String())
		s.word(uint64(v.V))
	case *ir.ConstFloat:
		s.word(tagConstFloat)
		s.str(v.Type().String())
		s.word(math.Float64bits(v.V))
	case *ir.ConstNull:
		s.word(tagConstNull)
		s.str(v.Type().String())
	case *ir.Undef:
		s.word(tagUndef)
		s.str(v.Type().String())
	case *ir.GlobalVar:
		s.word(tagGlobal)
		s.str(v.Name())
	case *ir.Function:
		if v == f {
			s.word(tagSelf)
		} else {
			s.word(tagFunc)
			s.str(v.Name())
		}
	default:
		s.word(tagOther)
	}
}

// HashFunction returns the stable structural hash of f. Declarations
// hash their signature only.
func HashFunction(f *ir.Function) uint64 {
	s := newHasher()
	s.str(f.Sig().String())
	if f.IsDecl() {
		return s.h
	}
	vn := valueNumbers(f)
	s.word(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		s.word(uint64(len(b.Instrs())))
		for _, in := range b.Instrs() {
			s.word(uint64(in.Op()))
			s.str(in.Type().String())
			s.word(uint64(in.Pred))
			if in.AllocTy != nil {
				s.str(in.AllocTy.String())
			}
			if in.Cleanup {
				s.word(1)
			}
			s.word(uint64(in.NumOperands()))
			for _, op := range in.Operands() {
				hashOperand(&s, f, vn, op)
			}
		}
	}
	return s.h
}
