package search

import (
	"testing"

	"repro/internal/synth"
)

// TestLSHRenameReindex: re-indexing a function after a rename must
// replace its size-sorted entry, not duplicate it — the stale entry
// would outlive its fingerprint and panic later queries. This is the
// Session.Update path for renamed functions.
func TestLSHRenameReindex(t *testing.T) {
	m := synth.Generate(synth.Profile{
		Name: "ren", Seed: 5, Funcs: 12,
		MinSize: 20, AvgSize: 40, MaxSize: 40,
		CloneFrac: 0.8, FamilySize: 3, MutRate: 0, Loops: 0.4,
	})
	funcs := m.Defined()
	l := NewLSH(funcs)
	n := l.Stats().Indexed

	// Rename a function so its (size, name) sort key moves within the
	// equal-size run, then re-index it as Session.sync does.
	f := funcs[len(funcs)/2]
	f.SetName("zzz_" + f.Name())
	l.Add(f)
	if got := l.Stats().Indexed; got != n {
		t.Fatalf("re-add after rename changed index count: %d -> %d", n, got)
	}
	if got := len(l.Order()); got != n {
		t.Fatalf("Order has %d entries for %d functions (stale duplicate)", got, n)
	}

	// Remove it and make sure no half-dead entry poisons queries.
	l.Remove(f)
	if got := l.Stats().Indexed; got != n-1 {
		t.Fatalf("remove after rename: index count %d, want %d", got, n-1)
	}
	for _, g := range l.Order() {
		if g == f {
			t.Fatal("removed function still in Order")
		}
		l.Candidates(g, 3) // must not panic on a dangling fingerprint
	}
}
