package search

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/synth"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irtext.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// twoRenamed is a pair of functions identical up to every local name
// (registers, blocks, parameters), plus a third with one different
// constant.
const twoRenamed = `
declare i32 @ext(i32)

define i32 @a(i32 %n) {
entry:
  %x = add i32 %n, 7
  %c = icmp slt i32 %x, 0
  br i1 %c, label %neg, label %pos
neg:
  %y = call i32 @ext(i32 %x)
  br label %pos
pos:
  %p = phi i32 [ %x, %entry ], [ %y, %neg ]
  ret i32 %p
}

define i32 @b(i32 %m) {
start:
  %u = add i32 %m, 7
  %cc = icmp slt i32 %u, 0
  br i1 %cc, label %below, label %above
below:
  %v = call i32 @ext(i32 %u)
  br label %above
above:
  %q = phi i32 [ %u, %start ], [ %v, %below ]
  ret i32 %q
}

define i32 @c(i32 %n) {
entry:
  %x = add i32 %n, 8
  %c = icmp slt i32 %x, 0
  br i1 %c, label %neg, label %pos
neg:
  %y = call i32 @ext(i32 %x)
  br label %pos
pos:
  %p = phi i32 [ %x, %entry ], [ %y, %neg ]
  ret i32 %p
}
`

func TestHashIgnoresLocalNames(t *testing.T) {
	m := parse(t, twoRenamed)
	a, b, c := m.FuncByName("a"), m.FuncByName("b"), m.FuncByName("c")
	if HashFunction(a) != HashFunction(b) {
		t.Error("renamed clones hash differently")
	}
	if HashFunction(a) == HashFunction(c) {
		t.Error("functions with different constants hash equal")
	}
	if !EqualFunctions(a, b) {
		t.Error("renamed clones not structurally equal")
	}
	if EqualFunctions(a, c) {
		t.Error("functions with different constants reported equal")
	}
}

// selfRecursive: two renamed self-recursive functions must hash equal
// (the self-reference canonicalizes to "self", not the symbol name).
const selfRecursive = `
define i32 @fact(i32 %n) {
entry:
  %c = icmp sle i32 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %p = mul i32 %n, %r
  ret i32 %p
}

define i32 @fact2(i32 %k) {
e:
  %cc = icmp sle i32 %k, 1
  br i1 %cc, label %b, label %r
b:
  ret i32 1
r:
  %k1 = sub i32 %k, 1
  %rr = call i32 @fact2(i32 %k1)
  %pp = mul i32 %k, %rr
  ret i32 %pp
}
`

func TestSelfRecursiveClonesMatch(t *testing.T) {
	m := parse(t, selfRecursive)
	f, g := m.FuncByName("fact"), m.FuncByName("fact2")
	if HashFunction(f) != HashFunction(g) {
		t.Error("renamed self-recursive clones hash differently")
	}
	if !EqualFunctions(f, g) {
		t.Error("renamed self-recursive clones not structurally equal")
	}
}

func TestHashStableUnderClone(t *testing.T) {
	m := synth.Generate(synth.Profile{
		Name: "h", Seed: 5, Funcs: 8, MinSize: 10, AvgSize: 40, MaxSize: 90,
		CloneFrac: 0.5, FamilySize: 2, MutRate: 0, Loops: 0.5, Switches: 0.4,
	})
	for _, f := range m.Defined() {
		clone, _ := ir.CloneFunction(f, f.Name()+".c")
		if HashFunction(f) != HashFunction(clone) {
			t.Errorf("@%s: clone hash differs", f.Name())
		}
		if !EqualFunctions(f, clone) {
			t.Errorf("@%s: clone not structurally equal", f.Name())
		}
	}
}

func TestFamilies(t *testing.T) {
	m := parse(t, twoRenamed)
	a, b, c := m.FuncByName("a"), m.FuncByName("b"), m.FuncByName("c")
	fams := Families([]*ir.Function{a, b, c})
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	if len(fams[0]) != 2 || fams[0][0] != a || fams[0][1] != b {
		t.Fatalf("family = %v, want [a b] with a as representative", names(fams[0]))
	}
}

func names(fs []*ir.Function) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name()
	}
	return out
}

// TestForwarderPreservesBehaviour folds b into a forwarder to a and
// differentially checks the fold on deterministic inputs.
func TestForwarderPreservesBehaviour(t *testing.T) {
	orig := parse(t, twoRenamed)
	folded := parse(t, twoRenamed)
	BuildForwarder(folded.FuncByName("b"), folded.FuncByName("a"))
	if err := ir.VerifyModule(folded); err != nil {
		t.Fatalf("folded module does not verify: %v", err)
	}
	of, nf := orig.FuncByName("b"), folded.FuncByName("b")
	for seed := int64(1); seed <= 8; seed++ {
		a := interp.Run(nil, of, interp.ArgsFor(of, seed))
		b := interp.Run(nil, nf, interp.ArgsFor(nf, seed))
		if same, why := interp.SameBehavior(a, b); !same {
			t.Fatalf("forwarder changed behaviour (seed %d): %s", seed, why)
		}
	}
}

func TestForwarderSelfRecursive(t *testing.T) {
	orig := parse(t, selfRecursive)
	folded := parse(t, selfRecursive)
	BuildForwarder(folded.FuncByName("fact2"), folded.FuncByName("fact"))
	if err := ir.VerifyModule(folded); err != nil {
		t.Fatalf("folded module does not verify: %v", err)
	}
	of, nf := orig.FuncByName("fact2"), folded.FuncByName("fact2")
	for seed := int64(1); seed <= 8; seed++ {
		a := interp.Run(nil, of, interp.ArgsFor(of, seed))
		b := interp.Run(nil, nf, interp.ArgsFor(nf, seed))
		if same, why := interp.SameBehavior(a, b); !same {
			t.Fatalf("forwarder changed behaviour (seed %d): %s", seed, why)
		}
	}
}

// TestFinderContract exercises Add/Remove/Candidates symmetry on both
// implementations.
func TestFinderContract(t *testing.T) {
	m := synth.Generate(synth.Profile{
		Name: "fc", Seed: 9, Funcs: 30, MinSize: 8, AvgSize: 40, MaxSize: 100,
		CloneFrac: 0.6, FamilySize: 3, MutRate: 0.05, Loops: 0.5,
	})
	funcs := m.Defined()
	for _, kind := range []Kind{KindExact, KindLSH} {
		t.Run(kind.String(), func(t *testing.T) {
			fd := New(kind, funcs)
			order := fd.Order()
			if len(order) != len(funcs) {
				t.Fatalf("Order returned %d functions, want %d", len(order), len(funcs))
			}
			f := order[0]
			cands := fd.Candidates(f, 5)
			if len(cands) == 0 {
				t.Fatalf("no candidates for @%s", f.Name())
			}
			for _, g := range cands {
				if g == f {
					t.Fatalf("candidate list for @%s contains itself", f.Name())
				}
			}
			// Removing a candidate must drop it from future lists.
			gone := cands[0]
			fd.Remove(gone)
			for _, g := range fd.Candidates(f, len(funcs)) {
				if g == gone {
					t.Fatalf("removed function @%s still returned", gone.Name())
				}
			}
			// Re-adding restores it.
			fd.Add(gone)
			found := false
			for _, g := range fd.Candidates(f, len(funcs)) {
				if g == gone {
					found = true
				}
			}
			if !found {
				t.Fatalf("re-added function @%s not returned", gone.Name())
			}
			st := fd.Stats()
			if st.Queries != 3 {
				t.Errorf("stats queries = %d, want 3", st.Queries)
			}
			if st.Indexed != len(funcs) {
				t.Errorf("stats indexed = %d, want %d", st.Indexed, len(funcs))
			}
			if st.QueryTime <= 0 {
				t.Errorf("stats query time not accumulated")
			}
		})
	}
}

func TestKindByName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{{"exact", KindExact, true}, {"lsh", KindLSH, true}, {"bogus", 0, false}} {
		got, err := KindByName(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("KindByName(%q) = %v, %v", tc.in, got, err)
		}
	}
	if KindExact.String() != "exact" || KindLSH.String() != "lsh" {
		t.Error("Kind.String mismatch")
	}
}
