package search

import (
	"encoding/binary"
	"sort"
	"sync/atomic"
	"unsafe"

	"repro/internal/ir"
)

// bucketStore holds the LSH band buckets behind an optional residency
// budget. Unbounded, a million-function index keeps every bucket as a
// live []*ir.Function slice — lshBands pointers per function of pure
// bookkeeping. Bounded, only the `budget` most recently written buckets
// stay hot; the rest spill to a varint-delta-encoded blob of function
// ids (a few bytes per member instead of a pointer plus slice header).
//
// Spilling cannot change any query result: buckets only seed the
// branch-and-bound in Candidates, and a decoded cold bucket yields
// exactly the functions the hot slice held. The trade is purely
// decode work (counted in BucketFaults) for resident memory.
//
// Locking contract: mutating calls (add, remove, and the eviction they
// trigger) run under the owning LSH's write lock. peek runs under the
// read lock and therefore never mutates the store — cold buckets are
// decoded into a fresh slice and NOT promoted, and the fault counter is
// atomic. Recency is tracked on writes only; with the streaming-build
// access pattern that motivates the budget (index batches once, query
// later), write recency is what predicts further writes.
type bucketStore struct {
	budget int // max hot buckets; <= 0 means unbounded
	hot    map[bucketKey]*hotBucket
	cold   map[bucketKey][]byte
	// LRU over hot buckets; head is most recently written.
	head, tail *hotBucket

	ids    map[*ir.Function]uint32
	byID   map[uint32]*ir.Function
	nextID uint32

	spillBytes int
	faults     atomic.Int64
}

type bucketKey struct {
	band int
	key  uint64
}

type hotBucket struct {
	k          bucketKey
	fns        []*ir.Function
	prev, next *hotBucket
}

func newBucketStore(budget int) *bucketStore {
	return &bucketStore{
		budget: budget,
		hot:    map[bucketKey]*hotBucket{},
		cold:   map[bucketKey][]byte{},
		ids:    map[*ir.Function]uint32{},
		byID:   map[uint32]*ir.Function{},
	}
}

func (s *bucketStore) unlink(b *hotBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (s *bucketStore) pushFront(b *hotBucket) {
	b.next = s.head
	if s.head != nil {
		s.head.prev = b
	}
	s.head = b
	if s.tail == nil {
		s.tail = b
	}
}

// add appends f to the bucket, promoting it if cold, and enforces the
// budget. Caller holds the write lock.
func (s *bucketStore) add(band int, key uint64, f *ir.Function) {
	if _, ok := s.ids[f]; !ok {
		s.nextID++
		s.ids[f] = s.nextID
		s.byID[s.nextID] = f
	}
	k := bucketKey{band, key}
	b := s.hot[k]
	if b == nil {
		var fns []*ir.Function
		if blob, ok := s.cold[k]; ok {
			fns = s.decode(blob)
			s.spillBytes -= len(blob)
			delete(s.cold, k)
		}
		b = &hotBucket{k: k, fns: fns}
		s.hot[k] = b
	} else {
		s.unlink(b)
	}
	b.fns = append(b.fns, f)
	s.pushFront(b)
	s.enforce()
}

// remove drops f from the bucket, wherever it lives. Caller holds the
// write lock.
func (s *bucketStore) remove(band int, key uint64, f *ir.Function) {
	k := bucketKey{band, key}
	if b, ok := s.hot[k]; ok {
		for i, g := range b.fns {
			if g == f {
				b.fns = append(b.fns[:i], b.fns[i+1:]...)
				break
			}
		}
		if len(b.fns) == 0 {
			s.unlink(b)
			delete(s.hot, k)
		}
		return
	}
	if blob, ok := s.cold[k]; ok {
		fns := s.decode(blob)
		for i, g := range fns {
			if g == f {
				fns = append(fns[:i], fns[i+1:]...)
				break
			}
		}
		s.spillBytes -= len(blob)
		if len(fns) == 0 {
			delete(s.cold, k)
			return
		}
		nb := s.encode(fns)
		s.cold[k] = nb
		s.spillBytes += len(nb)
	}
}

// dropID releases f's id after every bucket referencing it was cleaned.
// Caller holds the write lock.
func (s *bucketStore) dropID(f *ir.Function) {
	if id, ok := s.ids[f]; ok {
		delete(s.ids, f)
		delete(s.byID, id)
	}
}

// peek returns the bucket's members. Caller holds (at least) the read
// lock; a cold bucket is decoded into a fresh slice without being
// promoted, so peek never mutates the store.
func (s *bucketStore) peek(band int, key uint64) []*ir.Function {
	k := bucketKey{band, key}
	if b, ok := s.hot[k]; ok {
		return b.fns
	}
	if blob, ok := s.cold[k]; ok {
		s.faults.Add(1)
		return s.decode(blob)
	}
	return nil
}

// hotBucketOverhead is the per-bucket bookkeeping charged by
// residentBytes on top of the slice payload: the hotBucket struct
// itself (key, slice header, LRU links) plus its map entry.
const hotBucketOverhead = int(unsafe.Sizeof(hotBucket{})) + 16

// residentBytes estimates the live-heap footprint of the hot side of
// the store: pointer payloads of every hot bucket slice plus fixed
// per-bucket bookkeeping. Together with spillBytes (the cold side)
// this is the bucket storage the budget actually governs, measured
// independently of allocator fragmentation or anything else on the
// heap. Caller holds (at least) the read lock.
func (s *bucketStore) residentBytes() int {
	n := 0
	for _, b := range s.hot {
		n += cap(b.fns)*8 + hotBucketOverhead
	}
	return n
}

// enforce spills least-recently-written hot buckets past the budget.
func (s *bucketStore) enforce() {
	if s.budget <= 0 {
		return
	}
	for len(s.hot) > s.budget && s.tail != nil {
		b := s.tail
		s.unlink(b)
		delete(s.hot, b.k)
		blob := s.encode(b.fns)
		s.cold[b.k] = blob
		s.spillBytes += len(blob)
	}
}

// encode packs the bucket as sorted varint id deltas.
func (s *bucketStore) encode(fns []*ir.Function) []byte {
	ids := make([]uint32, 0, len(fns))
	for _, f := range fns {
		ids = append(ids, s.ids[f])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	blob := make([]byte, 0, len(ids)*2)
	prev := uint32(0)
	for _, id := range ids {
		blob = binary.AppendUvarint(blob, uint64(id-prev))
		prev = id
	}
	return blob
}

func (s *bucketStore) decode(blob []byte) []*ir.Function {
	var fns []*ir.Function
	id := uint32(0)
	for len(blob) > 0 {
		d, n := binary.Uvarint(blob)
		if n <= 0 {
			break
		}
		blob = blob[n:]
		id += uint32(d)
		if f, ok := s.byID[id]; ok {
			fns = append(fns, f)
		}
	}
	return fns
}
