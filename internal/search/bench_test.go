package search

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/synth"
)

// benchModule is a 2000-function clone-heavy module (the merge-rich,
// production-scale shape candidate discovery must stay fast on),
// generated once and shared by every finder benchmark.
var (
	benchOnce  sync.Once
	benchFuncs []*ir.Function
)

func benchFunctions(b *testing.B) []*ir.Function {
	b.Helper()
	benchOnce.Do(func() {
		m := synth.Generate(synth.Profile{
			Name: "bench2k", Seed: 42, Funcs: 2000,
			MinSize: 6, AvgSize: 40, MaxSize: 220,
			CloneFrac: 0.4, FamilySize: 4, MutRate: 0.06,
			Loops: 0.5, Switches: 0.4,
		})
		benchFuncs = m.Defined()
	})
	return benchFuncs
}

// benchFinder measures candidate discovery end to end: build the index,
// then answer one top-t query per function — the exact work the
// driver's planning stage does before any alignment runs.
func benchFinder(b *testing.B, kind Kind, topT int) {
	funcs := benchFunctions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd := New(kind, funcs)
		for _, f := range fd.Order() {
			if got := fd.Candidates(f, topT); len(got) == 0 {
				b.Fatalf("no candidates for @%s", f.Name())
			}
		}
	}
	b.StopTimer()
	fd := New(kind, funcs)
	for _, f := range funcs {
		fd.Candidates(f, topT)
	}
	st := fd.Stats()
	b.ReportMetric(st.AvgScanned(), "scanned/query")
}

// BenchmarkFinderExact is the brute-force baseline: every query scans
// all ~2000 live fingerprints.
func BenchmarkFinderExact(b *testing.B) { benchFinder(b, KindExact, 5) }

// BenchmarkFinderLSH answers the same queries from banded minhash
// buckets; the ISSUE's acceptance bar is >= 5x faster than
// BenchmarkFinderExact on this suite.
func BenchmarkFinderLSH(b *testing.B) { benchFinder(b, KindLSH, 5) }

// BenchmarkFinderDupFold measures the duplicate-detection pre-pass
// (stable hashing + family verification) over the same 2000 functions.
func BenchmarkFinderDupFold(b *testing.B) {
	funcs := benchFunctions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fams := Families(funcs); len(fams) == 0 {
			b.Fatal("no duplicate families in a clone-heavy module")
		}
	}
}
