package search

import (
	"sync"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/ir"
)

// Exact is the brute-force Finder: a thin accounting layer over
// fingerprint.Ranking. Candidate lists are bit-identical to the
// original pipeline's, so runs configured with KindExact reproduce the
// historical committed merge set exactly.
type Exact struct {
	r *fingerprint.Ranking

	mu    sync.Mutex
	stats Stats
}

// NewExact indexes every defined function in funcs.
func NewExact(funcs []*ir.Function) *Exact {
	return restoreExact(funcs, nil, nil)
}

// restoreExact is NewExact with an optional BodySource lens and
// optionally precomputed fingerprints; only the functions prior does not
// cover count toward Stats.Built.
func restoreExact(funcs []*ir.Function, view BodySource, prior map[*ir.Function]*fingerprint.Fingerprint) *Exact {
	var body func(*ir.Function) *ir.Function
	if view != nil {
		body = view.IndexBody
	}
	r, built := fingerprint.NewRankingIndexed(funcs, body, prior)
	e := &Exact{r: r}
	e.stats.Built = built
	return e
}

// Order returns the functions sorted largest-first.
func (e *Exact) Order() []*ir.Function { return e.r.Order() }

// Candidates returns the exact top-t list for f by fingerprint distance.
func (e *Exact) Candidates(f *ir.Function, t int) []*ir.Function {
	start := time.Now()
	out := e.r.Candidates(f, t)
	scanned := e.r.Live() - 1 // every live fingerprint except f's
	e.mu.Lock()
	e.stats.Queries++
	if scanned > 0 {
		e.stats.Scanned += scanned
	}
	e.stats.QueryTime += time.Since(start)
	e.mu.Unlock()
	return out
}

// Add (re-)indexes f.
func (e *Exact) Add(f *ir.Function) {
	if f.IsDecl() {
		return
	}
	e.r.Add(f)
	e.mu.Lock()
	e.stats.Built++
	e.mu.Unlock()
}

// AddBatch (re-)indexes a batch of functions. The ranking's Add is
// already O(1) amortized, so the batch form only saves lock traffic;
// it exists so Exact satisfies BatchIndexer and batched session deltas
// take one code path for both finders.
func (e *Exact) AddBatch(fs []*ir.Function) {
	n := 0
	for _, f := range fs {
		if f.IsDecl() {
			continue
		}
		e.r.Add(f)
		n++
	}
	e.mu.Lock()
	e.stats.Built += n
	e.mu.Unlock()
}

// Remove drops f from future candidate lists.
func (e *Exact) Remove(f *ir.Function) { e.r.Remove(f) }

// Stats returns the accumulated accounting. Indexed reflects the
// ranking's current live count, so re-Adds cannot skew it.
func (e *Exact) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Indexed = e.r.Live()
	return st
}
