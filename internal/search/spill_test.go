package search

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ir"
)

// spillCorpus sizes like driver's scaleFuncs: fast under -short,
// moderate for plain `go test ./...` (default package timeout), and
// SCALE_CORPUS for the 10k acceptance run in the dispatch CI job.
func spillCorpus(t *testing.T) []*ir.Function {
	t.Helper()
	n := 4000
	if testing.Short() {
		n = 1000
	} else if s := os.Getenv("SCALE_CORPUS"); s != "" {
		var err error
		if n, err = strconv.Atoi(s); err != nil || n <= 0 {
			t.Fatalf("bad SCALE_CORPUS %q", s)
		}
	}
	return corpus.Build(corpus.Config{Funcs: n, Seed: 5}).Defined()
}

// sameLists fails unless both finders serve identical candidate lists
// for every query function.
func sameLists(t *testing.T, want, got Finder, topT int, label string) {
	t.Helper()
	for _, f := range want.Order() {
		w := want.Candidates(f, topT)
		g := got.Candidates(f, topT)
		if len(w) != len(g) {
			t.Fatalf("%s: %s: list length %d != %d", label, f.Name(), len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: %s: candidate %d is %s, want %s", label, f.Name(), i, g[i].Name(), w[i].Name())
			}
		}
	}
}

// TestLSHSpillIdenticalCandidates is the bounded-memory acceptance
// property, made strict: a budgeted LSH index must serve candidate
// lists identical to the unbounded index — spilling moves bucket
// storage, never bucket contents — so spilled recall is trivially >=
// in-memory recall. The test also exercises the cold-bucket remove and
// re-index paths by mutating both indexes in lockstep.
func TestLSHSpillIdenticalCandidates(t *testing.T) {
	funcs := spillCorpus(t)
	unbounded := NewLSH(funcs)
	budget := 32
	spilled := newLSH(funcs, nil, nil, nil, budget, nil)

	sameLists(t, unbounded, spilled, 2, "fresh index")

	st := spilled.Stats()
	if st.ResidentBuckets > budget {
		t.Errorf("resident buckets %d exceed budget %d", st.ResidentBuckets, budget)
	}
	if st.SpilledBuckets == 0 {
		t.Errorf("no buckets spilled at budget %d over %d functions", budget, len(funcs))
	}
	if st.SpillBytes == 0 {
		t.Errorf("spilled buckets report zero encoded bytes")
	}
	if st.BucketFaults == 0 {
		t.Errorf("queries against a mostly-spilled index reported zero faults")
	}
	ust := unbounded.Stats()
	if ust.SpilledBuckets != 0 || ust.BucketFaults != 0 {
		t.Errorf("unbounded index reports spill activity: %+v", ust)
	}
	// The bounded-memory property itself: hot footprint plus encoded
	// cold blobs must undercut the unbounded index's hot footprint.
	if got, want := st.ResidentBytes+st.SpillBytes, ust.ResidentBytes; got >= want {
		t.Errorf("bounded bucket storage %d bytes >= unbounded %d bytes", got, want)
	}

	// Lockstep mutation: remove a slice of functions and re-index
	// another, then demand identical lists again. Removals must find
	// and rewrite cold bucket blobs, re-indexing must promote them.
	for i := 0; i < len(funcs); i += 7 {
		unbounded.Remove(funcs[i])
		spilled.Remove(funcs[i])
	}
	for i := 3; i < len(funcs); i += 11 {
		if i%7 == 0 {
			continue
		}
		unbounded.Add(funcs[i])
		spilled.Add(funcs[i])
	}
	sameLists(t, unbounded, spilled, 2, "after mutation")
}

// TestAddBatchMatchesSequential: for both finders, AddBatch must leave
// the index in the same state as element-wise Add.
func TestAddBatchMatchesSequential(t *testing.T) {
	funcs := spillCorpus(t)
	if testing.Short() && len(funcs) > 600 {
		funcs = funcs[:600]
	}
	split := len(funcs) * 3 / 4
	base, extra := funcs[:split], funcs[split:]
	finders := []struct {
		name string
		mk   func() Finder
	}{
		{"exact", func() Finder { return NewExact(base) }},
		{"lsh", func() Finder { return NewLSH(base) }},
		{"lsh-budget", func() Finder { return newLSH(base, nil, nil, nil, 16, nil) }},
	}
	for _, fd := range finders {
		t.Run(fd.name, func(t *testing.T) {
			seq, batch := fd.mk(), fd.mk()
			for _, f := range extra {
				seq.Add(f)
			}
			bi, ok := batch.(BatchIndexer)
			if !ok {
				t.Fatalf("%T does not implement BatchIndexer", batch)
			}
			bi.AddBatch(extra)
			wantOrder, gotOrder := seq.Order(), batch.Order()
			if len(wantOrder) != len(gotOrder) {
				t.Fatalf("order length %d != %d", len(gotOrder), len(wantOrder))
			}
			for i := range wantOrder {
				if wantOrder[i] != gotOrder[i] {
					t.Fatalf("order %d is %s, want %s", i, gotOrder[i].Name(), wantOrder[i].Name())
				}
			}
			sameLists(t, seq, batch, 2, fmt.Sprintf("%s after batch", fd.name))
		})
	}
}
