package search

import (
	"testing"

	"repro/internal/synth"
)

// recallAgainstExact builds both finders over the same function set and
// measures how much of the exact top-t lists the LSH finder recovers,
// averaged over every query function.
func recallAgainstExact(t *testing.T, p synth.Profile, topT int) float64 {
	t.Helper()
	m := synth.Generate(p)
	funcs := m.Defined()
	exact := NewExact(funcs)
	lsh := NewLSH(funcs)
	var hits, total int
	for _, f := range exact.Order() {
		want := exact.Candidates(f, topT)
		if len(want) == 0 {
			continue
		}
		got := map[string]bool{}
		for _, g := range lsh.Candidates(f, topT) {
			got[g.Name()] = true
		}
		for _, g := range want {
			total++
			if got[g.Name()] {
				hits++
			}
		}
	}
	if total == 0 {
		t.Fatalf("%s: no candidate lists to compare", p.Name)
	}
	return float64(hits) / float64(total)
}

// TestLSHRecall is the ISSUE's acceptance property: on synthetic
// benchmark suites the LSH finder must recover at least 90% of the
// exact finder's top-t candidate lists. Profiles cover template-heavy
// (large low-divergence clone families), C-like (fewer, noisier
// families) and mostly-unrelated modules.
func TestLSHRecall(t *testing.T) {
	profiles := []synth.Profile{
		{Name: "templates", Seed: 101, Funcs: 160, MinSize: 4, AvgSize: 50, MaxSize: 300,
			CloneFrac: 0.36, FamilySize: 4, MutRate: 0.04, Loops: 0.5, Floats: 0.25},
		{Name: "clike", Seed: 102, Funcs: 140, MinSize: 4, AvgSize: 44, MaxSize: 300,
			CloneFrac: 0.14, FamilySize: 3, MutRate: 0.12, Loops: 0.5, Switches: 0.8},
		{Name: "sparse", Seed: 103, Funcs: 120, MinSize: 6, AvgSize: 48, MaxSize: 260,
			CloneFrac: 0.05, FamilySize: 2, MutRate: 0.12, Loops: 0.6},
	}
	for _, p := range profiles {
		for _, topT := range []int{1, 5} {
			r := recallAgainstExact(t, p, topT)
			t.Logf("%s t=%d: recall %.3f", p.Name, topT, r)
			if r < 0.90 {
				t.Errorf("%s t=%d: LSH recall %.3f < 0.90", p.Name, topT, r)
			}
		}
	}
}
