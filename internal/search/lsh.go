package search

import (
	"sort"
	"sync"
	"time"

	"repro/internal/align"
	"repro/internal/fingerprint"
	"repro/internal/ir"
)

// alignClassLabel mirrors align.ClassLabel: the class every block label
// maps to in a ClassSource vector.
const alignClassLabel = align.ClassLabel

// LSH tuning. Each function is summarised as a weighted feature set of
// opcode bigrams (consecutive instructions within a block; occurrences
// unary-encoded and capped) plus block count, sketched with
// one-permutation minhash into lshHashes slots, and the sketch is cut
// into lshBands bands of lshRows rows each. Functions sharing any band
// key are bucket neighbours. Bigrams — unlike raw opcode counts, which
// barely differ across a compiler's output — separate unrelated
// functions sharply while clone families keep near-identical feature
// sets: a pair with bigram-Jaccard J shares a band with probability
// 1-(1-J^r)^b, which at r=4, b=8 is >97% for J >= 0.8 and <3% for
// J <= 0.4.
const (
	// lshSlotBits sizes the signature: one-permutation hashing routes
	// each feature to a slot by its top lshSlotBits bits, so lshHashes
	// is derived and stays a power of two by construction.
	lshSlotBits = 5
	lshHashes   = 1 << lshSlotBits
	lshRows     = 4
	lshBands    = lshHashes / lshRows
	lshCountCap = 8
)

// LSH is the locality-sensitive Finder: Candidates queries answered
// from banded minhash buckets plus a size-bounded branch-and-bound,
// with incremental Add/Remove as merges commit. The returned lists are
// the exact fingerprint top-t — identical to Exact's — but each query
// scores only the bucket neighbours and the size window the pruning
// bound cannot exclude, instead of every live function.
type LSH struct {
	// classes, when non-nil, supplies interned mergeability-class
	// vectors and the sketches are built over class bigrams instead of
	// opcode bigrams (see NewWithClasses).
	classes ClassSource
	// view, when non-nil, resolves the body actually fingerprinted and
	// sketched for each function (see NewIndexed); the maps, buckets and
	// size list stay keyed by the original function.
	view BodySource

	mu   sync.RWMutex
	fps  map[*ir.Function]*fingerprint.Fingerprint
	keys map[*ir.Function][]uint64 // band keys, len lshBands
	// store holds the band buckets, optionally behind a residency
	// budget that spills cold buckets to encoded id blobs (see
	// bucketStore). Spilling never changes a query result — buckets only
	// seed the exact branch-and-bound below.
	store *bucketStore
	// bySize is sorted by (fingerprint size, name): the deterministic
	// fallback pool when a query's buckets run sparse, exploiting
	// Distance(a, b) >= |a.Size - b.Size|.
	bySize []*ir.Function
	stats  Stats
	// obs, when non-nil, is notified after every sketch build (see
	// search.ClassObserver). Adopted snapshot entries skip it — nothing
	// was linearized for them.
	obs ClassObserver
}

// NewLSH indexes every defined function in funcs. The bulk build
// appends to the size-sorted list and sorts once at the end — O(n log n)
// — rather than paying Add's per-function sorted insertion, which would
// make construction quadratic on large modules.
func NewLSH(funcs []*ir.Function) *LSH { return NewLSHWithClasses(funcs, nil) }

// NewLSHWithClasses is NewLSH with an optional class source for the
// sketches (see NewWithClasses).
func NewLSHWithClasses(funcs []*ir.Function, src ClassSource) *LSH {
	return newLSH(funcs, src, nil, nil, 0, nil)
}

// newLSH is the bulk constructor behind NewLSH, search.NewIndexed and
// search.RestoreIndexed: functions covered by prior adopt their snapshot
// fingerprint and band keys, everything else is sketched from scratch
// (and counted in Stats.Built) — through the view lens when one is set.
// budget > 0 bounds the number of resident band buckets; the rest spill
// (see bucketStore).
func newLSH(funcs []*ir.Function, src ClassSource, view BodySource, prior map[*ir.Function]FuncIndex, budget int, obs ClassObserver) *LSH {
	l := &LSH{
		classes: src,
		view:    view,
		fps:     make(map[*ir.Function]*fingerprint.Fingerprint, len(funcs)),
		keys:    make(map[*ir.Function][]uint64, len(funcs)),
		store:   newBucketStore(budget),
		obs:     obs,
	}
	for _, f := range funcs {
		if f.IsDecl() {
			continue
		}
		if _, ok := l.fps[f]; ok {
			continue // duplicate input entry
		}
		if fi, ok := prior[f]; ok && fi.FP != nil && len(fi.Keys) == lshBands {
			l.adoptLocked(f, fi.FP, fi.Keys)
		} else {
			l.indexLocked(f)
		}
		l.bySize = append(l.bySize, f)
	}
	sort.SliceStable(l.bySize, func(i, j int) bool { return l.sizeLess(l.bySize[i], l.bySize[j]) })
	return l
}

// export copies the per-function index state for snapshotting.
func (l *LSH) export() map[*ir.Function]FuncIndex {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[*ir.Function]FuncIndex, len(l.fps))
	for f, fp := range l.fps {
		out[f] = FuncIndex{FP: fp, Keys: append([]uint64(nil), l.keys[f]...)}
	}
	return out
}

// adoptLocked installs a precomputed fingerprint and band-key set for f
// without touching the function body; the caller maintains bySize.
func (l *LSH) adoptLocked(f *ir.Function, fp *fingerprint.Fingerprint, keys []uint64) {
	l.fps[f] = fp
	l.keys[f] = keys
	for b, k := range keys {
		l.store.add(b, k, f)
	}
	l.stats.Indexed++
}

// splitmix64 finalizer: the feature hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sketch computes the one-permutation minhash signature of f's bigram
// feature set and folds it into band keys: each feature is hashed once,
// routed to a signature slot by its top bits, and each slot keeps its
// minimum. With a ClassSource the bigrams run over interned
// mergeability classes (reusing the vector the alignment stage computes
// anyway); without one they run over raw opcodes.
func (l *LSH) sketch(f *ir.Function) []uint64 {
	const empty = ^uint64(0)
	var sig [lshHashes]uint64
	for i := range sig {
		sig[i] = empty
	}
	feed := func(feature uint64) {
		h := mix64(feature)
		slot := h >> (64 - lshSlotBits)
		if h < sig[slot] {
			sig[slot] = h
		}
	}
	// Bigrams within a block, occurrence-capped so one hot pair cannot
	// dominate the sketch. Occurrence counts are tracked per bigram key
	// to keep the set weighted (two of the same pair is a different set
	// than one).
	occ := map[uint64]uint64{}
	bigram := func(key uint64) {
		n := occ[key]
		if n >= lshCountCap {
			return
		}
		occ[key] = n + 1
		feed(key<<8 | n)
	}
	blocks := uint64(0)
	if l.classes != nil {
		// Class-bigram features: consecutive instruction entries of the
		// linearized sequence; a label entry is a block boundary, so the
		// block-final instruction contributes a unigram, mirroring the
		// opcode path. Class IDs are interner-local, well under 2^27.
		classes := l.classes.ClassVector(f)
		for i, c := range classes {
			if c == alignClassLabel {
				blocks++
				continue
			}
			key := uint64(uint32(c)) << 28
			if i+1 < len(classes) && classes[i+1] != alignClassLabel {
				key |= uint64(uint32(classes[i+1])) & (1<<28 - 1)
			}
			bigram(key)
		}
	} else {
		for _, b := range f.Blocks {
			instrs := b.Instrs()
			for i := range instrs {
				key := uint64(instrs[i].Op())
				if i+1 < len(instrs) {
					key = key<<8 | uint64(instrs[i+1].Op())
				} else {
					key = key << 8 // block-final instruction: unigram feature
				}
				bigram(key)
			}
		}
		blocks = uint64(len(f.Blocks))
	}
	nb := blocks
	if nb > lshCountCap {
		nb = lshCountCap
	}
	for i := uint64(0); i < nb; i++ {
		feed(1<<40 | i)
	}
	// Rotation densification: an empty slot borrows the next non-empty
	// slot's value (mixed with the distance travelled), keeping sketches
	// of sparse feature sets comparable.
	for i := range sig {
		if sig[i] != empty {
			continue
		}
		for d := 1; d < lshHashes; d++ {
			j := (i + d) % lshHashes
			if sig[j] != empty {
				sig[i] = mix64(sig[j] + uint64(d))
				break
			}
		}
	}
	keys := make([]uint64, lshBands)
	for b := 0; b < lshBands; b++ {
		h := uint64(fnvOffset) ^ uint64(b)
		for r := 0; r < lshRows; r++ {
			h ^= sig[b*lshRows+r]
			h *= fnvPrime
		}
		keys[b] = h
	}
	return keys
}

// sizeLess orders the fallback pool by (size, name).
func (l *LSH) sizeLess(a, b *ir.Function) bool {
	sa, sb := l.fps[a].Size, l.fps[b].Size
	if sa != sb {
		return sa < sb
	}
	return a.Name() < b.Name()
}

// indexLocked fingerprints and sketches f — through the view lens when
// one is set — into the maps and band buckets; the caller maintains
// bySize.
func (l *LSH) indexLocked(f *ir.Function) {
	body := f
	if l.view != nil {
		body = l.view.IndexBody(f)
	}
	fp := fingerprint.New(body)
	l.fps[f] = fp
	keys := l.sketch(body)
	l.keys[f] = keys
	for b, k := range keys {
		l.store.add(b, k, f)
	}
	l.stats.Indexed++
	l.stats.Built++
	if l.obs != nil {
		l.obs.ObserveIndexed(f)
	}
}

// Add (re-)indexes f incrementally (a sorted insertion into the size
// list; bulk construction goes through NewLSH instead).
func (l *LSH) Add(f *ir.Function) {
	if f.IsDecl() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.fps[f]; ok {
		l.removeLocked(f)
	}
	l.indexLocked(f)
	i := sort.Search(len(l.bySize), func(i int) bool { return !l.sizeLess(l.bySize[i], f) })
	l.bySize = append(l.bySize, nil)
	copy(l.bySize[i+1:], l.bySize[i:])
	l.bySize[i] = f
}

// AddBatch (re-)indexes a batch of functions in one pass: every
// function is removed and re-sketched under a single lock acquisition
// and the size list is appended to and sorted once — O((n+k) log n) for
// k additions against Add's O(k·n) of per-function sorted insertions,
// the difference between a million-function batch being a rebuild and
// being an afternoon. Results are identical to k sequential Adds.
func (l *LSH) AddBatch(fs []*ir.Function) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range fs {
		if f.IsDecl() {
			continue
		}
		if _, ok := l.fps[f]; ok {
			l.removeLocked(f)
		}
		l.indexLocked(f)
		l.bySize = append(l.bySize, f)
	}
	sort.SliceStable(l.bySize, func(i, j int) bool { return l.sizeLess(l.bySize[i], l.bySize[j]) })
}

// Remove drops f from future candidate lists.
func (l *LSH) Remove(f *ir.Function) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeLocked(f)
}

func (l *LSH) removeLocked(f *ir.Function) {
	if _, ok := l.fps[f]; !ok {
		return
	}
	for b, k := range l.keys[f] {
		l.store.remove(b, k, f)
	}
	l.store.dropID(f)
	// The sorted position is computed from f's *current* (size, name);
	// if f was renamed since it was indexed, its entry sorts elsewhere
	// in the equal-size run, so fall back to a full scan rather than
	// leave a stale duplicate behind (which would outlive its
	// fingerprint and poison later queries).
	i := sort.Search(len(l.bySize), func(i int) bool { return !l.sizeLess(l.bySize[i], f) })
	found := -1
	for j := i; j < len(l.bySize); j++ {
		if l.bySize[j] == f {
			found = j
			break
		}
	}
	if found < 0 {
		for j := i - 1; j >= 0; j-- {
			if l.bySize[j] == f {
				found = j
				break
			}
		}
	}
	if found >= 0 {
		l.bySize = append(l.bySize[:found], l.bySize[found+1:]...)
	}
	delete(l.fps, f)
	delete(l.keys, f)
	l.stats.Indexed--
}

// Candidates returns up to t candidate partners for f: the true
// fingerprint top-t, found without a full scan. The band buckets seed
// the running top-t with near neighbours (clone relatives land there
// with overwhelming probability), which tightens the pruning radius
// immediately; a branch-and-bound walk outward through the size-sorted
// list then scores only functions whose size difference — a lower bound
// on fingerprint distance — could still beat the current t-th best.
// Everything skipped is provably worse, so the result matches Exact's
// list; only the work is sub-linear (on modules with any size spread).
func (l *LSH) Candidates(f *ir.Function, t int) []*ir.Function {
	start := time.Now()
	l.mu.RLock()
	self := l.fps[f]
	var out []*ir.Function
	scanned := 0
	if self != nil && t > 0 {
		type scored struct {
			fn *ir.Function
			d  int32
		}
		// best holds the running top-t ordered by (distance, name) — the
		// same total order Exact's sort uses.
		best := make([]scored, 0, t+1)
		before := func(a, b scored) bool {
			if a.d != b.d {
				return a.d < b.d
			}
			return a.fn.Name() < b.fn.Name()
		}
		// seen dedups bucket hits (one function can share several band
		// buckets with f) and masks them from the size walk below. The
		// size walk itself visits each index once and runs after the
		// buckets, so its candidates never need inserting — which keeps
		// the map at bucket-neighborhood size instead of growing with
		// every scanned function.
		seen := map[*ir.Function]bool{f: true}
		score := func(g *ir.Function) {
			scanned++
			// Admission threshold first: a candidate whose distance
			// provably exceeds the current worst of a full top-t can
			// never enter, and DistanceWithin stops summing the moment
			// that is settled. Ties at the radius still score fully —
			// the name tie-break can still admit them.
			r := int32(1<<31 - 1)
			if len(best) >= t {
				r = best[len(best)-1].d
			}
			d := fingerprint.DistanceWithin(self, l.fps[g], r)
			if d > r {
				return
			}
			s := scored{fn: g, d: d}
			pos := sort.Search(len(best), func(i int) bool { return before(s, best[i]) })
			if pos == len(best) {
				if len(best) < t {
					best = append(best, s)
				}
				return
			}
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = s
			if len(best) > t {
				best = best[:t]
			}
		}
		// Radius beyond which no unscored candidate can enter the top-t.
		// The walk continues on equality: a tie on distance could still
		// win on the name tie-break.
		radius := func() int32 {
			if len(best) < t {
				return 1<<31 - 1
			}
			return best[len(best)-1].d
		}
		for b, k := range l.keys[f] {
			for _, g := range l.store.peek(b, k) {
				if !seen[g] {
					seen[g] = true
					score(g)
				}
			}
		}
		i := sort.Search(len(l.bySize), func(i int) bool { return !l.sizeLess(l.bySize[i], f) })
		lo, hi := i-1, i
		for lo >= 0 || hi < len(l.bySize) {
			dLo, dHi := int32(1<<31-1), int32(1<<31-1)
			if lo >= 0 {
				dLo = abs32(l.fps[l.bySize[lo]].Size - self.Size)
			}
			if hi < len(l.bySize) {
				dHi = abs32(l.fps[l.bySize[hi]].Size - self.Size)
			}
			if dLo <= dHi {
				if dLo > radius() {
					break
				}
				if g := l.bySize[lo]; !seen[g] {
					score(g)
				}
				lo--
			} else {
				if dHi > radius() {
					break
				}
				if g := l.bySize[hi]; !seen[g] {
					score(g)
				}
				hi++
			}
		}
		out = make([]*ir.Function, len(best))
		for i, s := range best {
			out[i] = s.fn
		}
	}
	l.mu.RUnlock()

	l.mu.Lock()
	l.stats.Queries++
	l.stats.Scanned += scanned
	l.stats.QueryTime += time.Since(start)
	l.mu.Unlock()
	return out
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// Order returns the indexed functions sorted largest-first by
// instruction count (ties by name), matching Exact's attempt order.
func (l *LSH) Order() []*ir.Function {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := append([]*ir.Function(nil), l.bySize...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := l.fps[out[i]].Size, l.fps[out[j]].Size
		if si != sj {
			return si > sj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// Stats returns the accumulated accounting, including the bucket
// store's residency split so a bounded index's memory ceiling is
// observable.
func (l *LSH) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.ResidentBuckets = len(l.store.hot)
	st.SpilledBuckets = len(l.store.cold)
	st.SpillBytes = l.store.spillBytes
	st.BucketFaults = l.store.faults.Load()
	st.ResidentBytes = l.store.residentBytes()
	return st
}
