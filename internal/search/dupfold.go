package search

import (
	"repro/internal/ir"
)

// EqualFunctions reports whether f and g are structurally identical up
// to local value names: same signature, same block/instruction shape,
// and operands that correspond under the positional value numbering.
// References to the enclosing function correspond to each other, so
// renamed recursive clones compare equal. The comparison is strict on
// operand order (no commutativity), so a true result means g's body
// computes exactly what f's does.
func EqualFunctions(f, g *ir.Function) bool {
	if f == g {
		return true
	}
	if !ir.TypesEqual(f.Sig(), g.Sig()) {
		return false
	}
	if f.IsDecl() || g.IsDecl() {
		return f.IsDecl() && g.IsDecl()
	}
	if len(f.Blocks) != len(g.Blocks) {
		return false
	}
	// Positional correspondence f-value -> g-value.
	corr := make(map[ir.Value]ir.Value, f.NumInstrs()+len(f.Params())+len(f.Blocks))
	for i, p := range f.Params() {
		corr[p] = g.Param(i)
	}
	for i, fb := range f.Blocks {
		gb := g.Blocks[i]
		if len(fb.Instrs()) != len(gb.Instrs()) {
			return false
		}
		corr[fb] = gb
		for j, fin := range fb.Instrs() {
			corr[fin] = gb.Instrs()[j]
		}
	}
	for i, fb := range f.Blocks {
		gb := g.Blocks[i]
		for j, fin := range fb.Instrs() {
			if !equalInstr(f, g, corr, fin, gb.Instrs()[j]) {
				return false
			}
		}
	}
	return true
}

func equalInstr(f, g *ir.Function, corr map[ir.Value]ir.Value, a, b *ir.Instruction) bool {
	if a.Op() != b.Op() || a.Pred != b.Pred || a.Cleanup != b.Cleanup {
		return false
	}
	if !ir.TypesEqual(a.Type(), b.Type()) {
		return false
	}
	if (a.AllocTy == nil) != (b.AllocTy == nil) {
		return false
	}
	if a.AllocTy != nil && !ir.TypesEqual(a.AllocTy, b.AllocTy) {
		return false
	}
	if a.NumOperands() != b.NumOperands() {
		return false
	}
	for i := 0; i < a.NumOperands(); i++ {
		oa, ob := a.Operand(i), b.Operand(i)
		if want, ok := corr[oa]; ok {
			if want != ob {
				return false
			}
			continue
		}
		// Not a local of f: constants compare structurally, the
		// enclosing functions correspond, everything else (globals,
		// other functions) must be the same symbol.
		if oa == ir.Value(f) && ob == ir.Value(g) {
			continue
		}
		if !ir.ValuesEqual(oa, ob) {
			return false
		}
	}
	return true
}

// Families groups structurally identical defined functions: hash
// bucketing by HashFunction, then pairwise verification against each
// family's representative (hash equality alone is never trusted). Each
// returned family has at least two members; the representative comes
// first. Families and members keep the order of funcs, so the result is
// deterministic.
func Families(funcs []*ir.Function) [][]*ir.Function {
	return FamiliesBy(funcs, HashFunction, EqualFunctions)
}

// FamiliesBy is Families under a caller-chosen equivalence: hashOf
// buckets, eq verifies. Canonical-view sessions pass the view hash and a
// GVN-congruence + interp check, widening folding from syntactic
// identity to semantic duplicates while the bucket-and-peel structure —
// and therefore determinism — stays identical.
func FamiliesBy(funcs []*ir.Function, hashOf func(*ir.Function) uint64, eq func(a, b *ir.Function) bool) [][]*ir.Function {
	buckets := make(map[uint64][]*ir.Function, len(funcs))
	var order []uint64
	for _, f := range funcs {
		if f.IsDecl() {
			continue
		}
		h := hashOf(f)
		if _, seen := buckets[h]; !seen {
			order = append(order, h)
		}
		buckets[h] = append(buckets[h], f)
	}
	var fams [][]*ir.Function
	for _, h := range order {
		bucket := buckets[h]
		// A bucket may hold several distinct families on hash collision;
		// peel verified families off front to back.
		for len(bucket) >= 2 {
			rep := bucket[0]
			fam := []*ir.Function{rep}
			rest := bucket[:0:0]
			for _, f := range bucket[1:] {
				if eq(rep, f) {
					fam = append(fam, f)
				} else {
					rest = append(rest, f)
				}
			}
			if len(fam) >= 2 {
				fams = append(fams, fam)
			}
			bucket = rest
		}
	}
	return fams
}

// BuildForwarder replaces dup's body with a tail forwarder to rep:
// dup(args...) becomes "return rep(args...)". The signatures must be
// equal (the duplicate-fold caller guarantees it via EqualFunctions).
func BuildForwarder(dup, rep *ir.Function) {
	if !ir.TypesEqual(dup.Sig(), rep.Sig()) {
		panic("search: BuildForwarder signature mismatch")
	}
	dup.Clear()
	entry := dup.NewBlockIn("entry")
	args := make([]ir.Value, len(dup.Params()))
	for i, p := range dup.Params() {
		args[i] = p
	}
	call := ir.NewCall("", rep, args...)
	entry.Append(call)
	if ir.IsVoid(rep.Sig().Ret) {
		entry.Append(ir.NewRet(nil))
	} else {
		entry.Append(ir.NewRet(call))
	}
}
