// Package search supplies merge candidates to the driver: given the
// module's defined functions, which pairs are worth aligning? Two
// implementations sit behind the Finder interface:
//
//   - Exact wraps fingerprint.Ranking, scanning every live function per
//     query. Its candidate lists — and therefore the committed merge set —
//     are bit-identical to the original pipeline at any parallelism.
//   - LSH indexes banded minhash sketches over opcode bigrams. A query
//     seeds its top-t from the sketch buckets (clone relatives land
//     there with overwhelming probability), then finishes with a
//     branch-and-bound walk over a size-sorted list — the size
//     difference lower-bounds the fingerprint distance, so everything
//     skipped is provably worse. Queries return the exact top-t while
//     scoring a fraction of the module; candidate discovery stops being
//     the O(n²) bottleneck.
//
// The package also provides stable structural hashing (HashFunction) and
// duplicate detection (Families, EqualFunctions, BuildForwarder): exact
// clones are folded into forwarding thunks before any alignment runs, so
// identical-function families cost zero DP cells.
package search

import (
	"fmt"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/ir"
)

// Finder answers candidate queries over a set of functions. The driver
// consumes one Finder per run for both the planning and the commit
// stage. Implementations are safe for concurrent use (reads may run
// concurrently; writes are serialized against them).
type Finder interface {
	// Order returns the indexed functions sorted largest-first (the
	// order in which merging is attempted, paper §5.5).
	Order() []*ir.Function
	// Candidates returns up to t candidate partners for f, most
	// promising first. f itself and removed functions are never
	// returned.
	Candidates(f *ir.Function, t int) []*ir.Function
	// Add (re-)indexes f as a candidate.
	Add(f *ir.Function)
	// Remove drops f from future candidate lists (it was merged away).
	Remove(f *ir.Function)
	// Stats returns the accumulated query accounting.
	Stats() Stats
}

// BatchIndexer is the optional bulk half of Finder: a finder that can
// (re-)index n functions in one pass implements it, and the driver's
// batched session deltas (Session.UpdateBatch) prefer it over n
// sequential Add calls. AddBatch must be equivalent to calling Add on
// each function in order. Both finders in this package implement it.
type BatchIndexer interface {
	AddBatch(fs []*ir.Function)
}

// Stats accounts for the work a Finder did. The driver folds it into the
// run report; cmd/fmerge -v prints it.
type Stats struct {
	// Queries counts Candidates calls.
	Queries int
	// Scanned counts candidate fingerprints scored across all queries
	// (for Exact this is every live function per query; for LSH only
	// the bucket survivors).
	Scanned int
	// QueryTime accumulates wall-clock time spent inside Candidates.
	QueryTime time.Duration
	// Indexed is the number of functions currently indexed.
	Indexed int
	// Built counts fingerprint (and, for LSH, sketch) computations the
	// finder performed — construction plus every re-Add. A finder
	// restored from a snapshot starts with Built equal to only the
	// functions whose snapshot entries could not be reused, which is how
	// warm restarts are asserted to skip the rebuild.
	Built int
	// ResidentBuckets/SpilledBuckets split a budgeted LSH index's band
	// buckets into hot (live slices) and cold (spilled to encoded id
	// blobs of SpillBytes total); BucketFaults counts queries that had
	// to decode a cold bucket. Spill fields are zero under KindExact or
	// an unbounded LSH index.
	ResidentBuckets int
	SpilledBuckets  int
	SpillBytes      int
	BucketFaults    int64
	// ResidentBytes estimates the live-heap footprint of the hot
	// buckets (slice payloads plus per-bucket bookkeeping). The
	// bucket storage a budget governs is ResidentBytes + SpillBytes;
	// comparing that sum against an unbounded index's ResidentBytes is
	// the bounded-memory acceptance signal in BENCH_scale.json,
	// deliberately independent of whole-process heap noise.
	ResidentBytes int
}

// AvgScanned returns the mean number of candidates scored per query.
func (s Stats) AvgScanned() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Scanned) / float64(s.Queries)
}

// Kind selects a Finder implementation.
type Kind int

// Supported finders.
const (
	// KindExact is the brute-force fingerprint ranking (the paper's
	// §5.1 pipeline): exact top-t lists, O(n) scan per query.
	KindExact Kind = iota
	// KindLSH is the locality-sensitive index over banded fingerprint
	// sketches: the same top-t lists from sub-linear query work.
	KindLSH
)

// String names the finder kind as used by the -finder flag.
func (k Kind) String() string {
	if k == KindLSH {
		return "lsh"
	}
	return "exact"
}

// KindByName parses a -finder flag value.
func KindByName(name string) (Kind, error) {
	switch name {
	case "exact":
		return KindExact, nil
	case "lsh":
		return KindLSH, nil
	}
	return 0, fmt.Errorf("search: unknown finder %q (want exact or lsh)", name)
}

// New builds the Finder of the given kind over funcs (declarations are
// ignored).
func New(kind Kind, funcs []*ir.Function) Finder {
	return NewWithClasses(kind, funcs, nil)
}

// ClassSource provides per-function mergeability-class vectors (one
// int32 per linearized entry, labels included). align.Cache implements
// it; the driver hands its per-run cache to the finder so the LSH
// sketches reuse the class vectors the alignment stage needs anyway —
// one linearization pass per function serves both subsystems.
type ClassSource interface {
	ClassVector(f *ir.Function) []int32
}

// NewWithClasses is New with an optional ClassSource. A nil src keeps
// the self-contained opcode-bigram sketches; a non-nil src switches the
// LSH sketches to class bigrams, which are strictly more discriminating
// (classes fold in types and constant auxiliaries, so unrelated
// functions sharing opcode shapes stop colliding). Candidate lists are
// the exact fingerprint top-t either way — sketches only seed the
// branch-and-bound — so the committed merge set does not depend on src.
func NewWithClasses(kind Kind, funcs []*ir.Function, src ClassSource) Finder {
	return NewIndexed(kind, funcs, src, nil)
}

// BodySource resolves the body a finder actually indexes for a
// function — the canonical-view lens. IndexBody(f) must be
// deterministic for an unchanged f; the driver's canon.Lens implements
// it by memoizing canonical views. A nil BodySource indexes original
// bodies.
type BodySource interface {
	IndexBody(f *ir.Function) *ir.Function
}

// NewIndexed is NewWithClasses with an optional BodySource: fingerprints
// and sketches are computed over view.IndexBody(f) while candidate
// identity, ordering and removal stay keyed by the original f. This is
// how canonical-view sessions make reducible noise (redundant memory
// traffic, unfolded constants, commuted operands, spurious blocks)
// invisible to discovery.
func NewIndexed(kind Kind, funcs []*ir.Function, src ClassSource, view BodySource) Finder {
	return NewIndexedBudget(kind, funcs, src, view, 0)
}

// NewIndexedBudget is NewIndexed with a residency budget for the LSH
// bucket store: budget > 0 keeps at most that many band buckets hot and
// spills the rest to compact encoded blobs (Stats reports the split).
// Candidate lists are identical at any budget — buckets only seed the
// exact branch-and-bound — so the budget trades decode work for
// resident memory, never recall. Ignored under KindExact.
func NewIndexedBudget(kind Kind, funcs []*ir.Function, src ClassSource, view BodySource, budget int) Finder {
	return NewIndexedBudgetObserved(kind, funcs, src, view, budget, nil)
}

// ClassObserver is notified whenever an LSH finder (re-)sketches a
// function — at bulk construction and on every incremental Add /
// AddBatch, but not when a snapshot entry is adopted verbatim (no
// sketch is built then). The driver's planning funnel piggybacks its
// per-function class-histogram builds on the notification, while the
// function's linearization is hot. Observers must tolerate concurrent
// calls only insofar as the finder's own entry points are called
// concurrently.
type ClassObserver interface {
	ObserveIndexed(f *ir.Function)
}

// NewIndexedBudgetObserved is NewIndexedBudget with an optional sketch
// observer. A nil obs (and any KindExact finder, which builds no
// sketches) behaves exactly like NewIndexedBudget.
func NewIndexedBudgetObserved(kind Kind, funcs []*ir.Function, src ClassSource, view BodySource, budget int, obs ClassObserver) Finder {
	if kind == KindLSH {
		return newLSH(funcs, src, view, nil, budget, obs)
	}
	return restoreExact(funcs, view, nil)
}

// FuncIndex is one function's share of a finder's index: the fingerprint
// and (for LSH) the band keys of its minhash sketch. It is what a
// snapshot persists per function so a warm restart can skip recomputing
// both.
type FuncIndex struct {
	FP   *fingerprint.Fingerprint
	Keys []uint64 // LSH band keys; nil under KindExact
}

// Export returns the per-function index state of f, keyed by function.
// Only the two concrete finders of this package are supported.
func Export(f Finder) map[*ir.Function]FuncIndex {
	switch f := f.(type) {
	case *Exact:
		fps := f.r.Fingerprints()
		out := make(map[*ir.Function]FuncIndex, len(fps))
		for fn, fp := range fps {
			out[fn] = FuncIndex{FP: fp}
		}
		return out
	case *LSH:
		return f.export()
	}
	return nil
}

// Restore builds a Finder of the given kind over funcs, adopting the
// fingerprints and sketches in prior instead of recomputing them;
// functions without a prior entry (or with one lacking band keys when
// kind is KindLSH) are indexed from scratch and counted in Stats.Built.
// The caller is responsible for only passing prior entries that still
// describe the function's current body — the driver checks structural
// hashes before trusting a snapshot.
func Restore(kind Kind, funcs []*ir.Function, src ClassSource, prior map[*ir.Function]FuncIndex) Finder {
	return RestoreIndexed(kind, funcs, src, nil, prior)
}

// RestoreIndexed is Restore through a BodySource lens (see NewIndexed):
// adopted prior entries must have been computed under the same lens
// configuration — the driver's snapshot carries the canon config as a
// validation guard precisely so restored sketches and freshly indexed
// views share one hash space.
func RestoreIndexed(kind Kind, funcs []*ir.Function, src ClassSource, view BodySource, prior map[*ir.Function]FuncIndex) Finder {
	return RestoreIndexedBudget(kind, funcs, src, view, prior, 0)
}

// RestoreIndexedBudget is RestoreIndexed with an LSH bucket residency
// budget (see NewIndexedBudget).
func RestoreIndexedBudget(kind Kind, funcs []*ir.Function, src ClassSource, view BodySource, prior map[*ir.Function]FuncIndex, budget int) Finder {
	if kind == KindLSH {
		return newLSH(funcs, src, view, prior, budget, nil)
	}
	fps := make(map[*ir.Function]*fingerprint.Fingerprint, len(prior))
	for fn, fi := range prior {
		fps[fn] = fi.FP
	}
	return restoreExact(funcs, view, fps)
}
