package fmsa

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/transform"
)

func TestFMSAPipelineOnFig2(t *testing.T) {
	m, err := irtext.Parse(irtext.Fig2Module)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := m.FuncByName("F1"), m.FuncByName("F2")
	PrepareModule(m)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("after Prepare: %v", err)
	}
	// No phis may remain anywhere after demotion.
	for _, f := range m.Defined() {
		f.Instrs(func(in *ir.Instruction) bool {
			if in.Op() == ir.OpPhi {
				t.Errorf("phi survived demotion in @%s", f.Name())
			}
			return true
		})
	}
	merged, stats, err := MergePair(m, f1, f2, "fm")
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyFunction(merged); err != nil {
		t.Fatalf("merged: %v\n%s", err, merged)
	}
	if stats.XorRewrites != 0 {
		t.Error("FMSA must not use the xor-branch rewrite")
	}
	if stats.CoalescedPairs != 0 {
		t.Error("FMSA must not use phi-node coalescing")
	}
	CleanupModule(m)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("after Cleanup: %v", err)
	}
}

// TestFMSAMergedSlotsMayResistPromotion demonstrates the paper's §3
// pathology end to end: after merging demoted functions whose aligned
// stores hit different slots, some allocas survive promotion inside the
// merged function.
func TestFMSAMergedSlotsMayResistPromotion(t *testing.T) {
	// Two functions with cross-block values in different positions, so
	// their demoted slot lists misalign.
	src := `
declare i32 @e1(i32)
declare i32 @e2(i32)
define i32 @a(i32 %x, i1 %c) {
entry:
  %mx = mul i32 %x, 3
  %v = call i32 @e1(i32 %x)
  br i1 %c, label %t, label %j
t:
  br label %j
j:
  %w = add i32 %v, %mx
  %r = call i32 @e2(i32 %w)
  ret i32 %r
}
define i32 @b(i32 %x, i1 %c) {
entry:
  %v = call i32 @e1(i32 %x)
  br i1 %c, label %t, label %j
t:
  br label %j
j:
  %w = add i32 %v, 7
  %r = call i32 @e2(i32 %w)
  ret i32 %r
}`
	m := irtext.MustParse(src)
	f1, f2 := m.FuncByName("a"), m.FuncByName("b")
	PrepareModule(m)
	merged, _, err := MergePair(m, f1, f2, "fm")
	if err != nil {
		t.Fatal(err)
	}
	transform.Simplify(merged)
	if err := ir.VerifyFunction(merged); err != nil {
		t.Fatalf("verify: %v\n%s", err, merged)
	}
	// The theorem here is one-sided: SalSSA on the same (un-demoted) pair
	// must not be bigger than FMSA's result.
	m2 := irtext.MustParse(src)
	s1, s2 := m2.FuncByName("a"), m2.FuncByName("b")
	import2, _, err := mergeSalSSA(m2, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	transform.Simplify(import2)
	if import2.NumInstrs() > merged.NumInstrs() {
		t.Errorf("SalSSA merged size %d > FMSA %d", import2.NumInstrs(), merged.NumInstrs())
	}
}

func mergeSalSSA(m *ir.Module, f1, f2 *ir.Function) (*ir.Function, int, error) {
	merged, _, err := core.Merge(m, f1, f2, "sal", core.DefaultOptions())
	return merged, 0, err
}
