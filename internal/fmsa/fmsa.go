// Package fmsa implements the state-of-the-art baseline, Function
// Merging by Sequence Alignment (Rocha et al., CGO 2019), following the
// workflow of the paper's Figure 1: register demotion (Reg2Mem) over
// every candidate function, linearization and alignment of the phi-free
// bodies, sequence-driven code generation, then register promotion
// (Mem2Reg) and simplification as clean-up.
//
// The code generator is shared with package core (on phi-free inputs the
// CFG-driven generator degenerates to FMSA's sequence-driven behaviour);
// what defines FMSA is the demotion requirement and the absence of the
// SSA-specific optimisations (phi-node coalescing, xor-branch). Its
// signature pathology emerges naturally: merged loads/stores whose slots
// differ receive an address select, the slot's address therefore escapes,
// and register promotion cannot remove it (paper §3).
package fmsa

import (
	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/transform"
)

// Options returns the generator configuration FMSA uses: no phi-node
// coalescing, no xor-branch rewrite (commutative operand reordering is
// kept — the CGO'19 prototype exploits commutativity).
func Options() core.Options {
	opts := core.DefaultOptions()
	opts.PhiCoalescing = false
	opts.XorBranch = false
	return opts
}

// Prepare applies register demotion to f, FMSA's mandatory
// preprocessing. Returns the number of demoted values.
func Prepare(f *ir.Function) int { return transform.RegToMem(f) }

// PrepareModule demotes every defined function in m; FMSA cannot attempt
// any merge without this, which is what leaves residue on unmerged
// functions.
func PrepareModule(m *ir.Module) {
	for _, f := range m.Defined() {
		transform.RegToMem(f)
	}
}

// Cleanup promotes and simplifies f after merging (Figure 1's Mem2Reg +
// Simplification stages).
func Cleanup(f *ir.Function) {
	transform.Mem2Reg(f)
	transform.Simplify(f)
}

// CleanupModule runs Cleanup over every defined function.
func CleanupModule(m *ir.Module) {
	for _, f := range m.Defined() {
		Cleanup(f)
	}
}

// MergePair merges two already-demoted functions with the FMSA
// configuration and cleans the result. The caller removes the returned
// function from m to roll back.
func MergePair(m *ir.Module, f1, f2 *ir.Function, name string) (*ir.Function, *core.Stats, error) {
	merged, stats, err := core.Merge(m, f1, f2, name, Options())
	if err != nil {
		return nil, nil, err
	}
	Cleanup(merged)
	return merged, stats, nil
}

// Align aligns two demoted functions under FMSA's scoring.
func Align(f1, f2 *ir.Function, maxCells int64) (*align.Result, error) {
	opts := Options().Align
	opts.MaxCells = maxCells
	return align.AlignFunctions(f1, f2, opts)
}
