package client

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func throttled() error { return &StatusError{Code: http.StatusServiceUnavailable, Message: "full"} }

// TestRetryEventualSuccess: transient 503s are absorbed; the call
// succeeds once the daemon admits it, and every backoff was observed
// with a positive, capped sleep.
func TestRetryEventualSuccess(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		BaseDelay: time.Microsecond,
		MaxDelay:  time.Millisecond,
		OnBackoff: func(attempt int, err error, sleep time.Duration) {
			if !IsThrottled(err) {
				t.Errorf("backoff on non-throttle error: %v", err)
			}
			sleeps = append(sleeps, sleep)
		},
	}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 4 {
			return throttled()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not absorb transient 503s: %v", err)
	}
	if calls != 4 || len(sleeps) != 3 {
		t.Fatalf("calls=%d backoffs=%d, want 4 and 3", calls, len(sleeps))
	}
	for i, s := range sleeps {
		if s <= 0 || s > time.Millisecond+1 {
			t.Fatalf("backoff %d slept %v, outside (0, MaxDelay]", i, s)
		}
	}
}

// TestRetryExhaustion: a persistent 429 surfaces after MaxAttempts
// tries, as the original StatusError.
func TestRetryExhaustion(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return &StatusError{Code: http.StatusTooManyRequests, Message: "quota"}
	})
	if calls != 3 {
		t.Fatalf("made %d calls, want 3", calls)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("exhaustion returned %v, want the 429", err)
	}
}

// TestRetryHardErrorImmediate: a 400 is the caller's bug; no retries.
func TestRetryHardErrorImmediate(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), func() error {
		calls++
		return &StatusError{Code: http.StatusBadRequest, Message: "nope"}
	})
	if calls != 1 {
		t.Fatalf("retried a hard error: %d calls", calls)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want the 400", err)
	}
}

// TestRetryConflictRetried: 409 is transient under optimistic
// concurrency — the default predicate retries it.
func TestRetryConflictRetried(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls == 1 {
			return &StatusError{Code: http.StatusConflict, Message: "stale plan"}
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("conflict retry: err=%v calls=%d", err, calls)
	}
}

// TestRetryContextCancel: cancellation mid-backoff returns promptly,
// carrying both the context error and the error being retried.
func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func() error { return throttled() })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("missing context error: %v", err)
		}
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("missing the retried error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry kept sleeping through cancellation")
	}
}

// TestRetryCustomPredicate: Retryable overrides the default verdict.
func TestRetryCustomPredicate(t *testing.T) {
	p := RetryPolicy{
		BaseDelay: time.Microsecond,
		Retryable: func(err error) bool { return false },
	}
	calls := 0
	p.Do(context.Background(), func() error { calls++; return throttled() })
	if calls != 1 {
		t.Fatalf("custom predicate ignored: %d calls", calls)
	}
}
