// Package client is the Go client for the fmerged daemon (cmd/fmerged):
// a thin, dependency-free wrapper over its /v1 HTTP surface. A Client
// is safe for concurrent use; a SessionClient addresses one named
// daemon session.
//
//	c := client.New("http://127.0.0.1:7433", "ci-worker-3")
//	sc, _ := c.CreateSession(ctx, client.CreateSession{
//	    Name: "libfoo", Module: irText, Finder: "lsh", DupFold: true,
//	})
//	for {
//	    plan, _ := sc.Plan(ctx)
//	    if len(plan.Merges)+len(plan.Folds) == 0 {
//	        break
//	    }
//	    if _, err := sc.Apply(ctx, plan); client.IsConflict(err) {
//	        continue // someone else committed first: replan
//	    }
//	}
//
// Module deltas stream as textual IR through Update (SpliceModule
// semantics: fragments may add globals and functions or redefine
// existing bodies in place). Plan/Apply is the optimistic-concurrency
// path: Apply of a plan whose structural hashes no longer match the
// daemon's module fails with 409 Conflict (IsConflict), and the caller
// replans.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/serve/api"
)

// Wire types, shared with the daemon.
type (
	// CreateSession configures a new daemon session; see the field docs
	// on the api package.
	CreateSession = api.CreateSession
	// SessionInfo describes a daemon session.
	SessionInfo = api.SessionInfo
	// Plan is the serializable merge plan Plan returns and Apply
	// consumes (repro.MergePlan on the wire).
	Plan = api.Plan
	// Report summarizes a committed run.
	Report = api.Report
	// ServerStats is the daemon's occupancy and admission accounting.
	ServerStats = api.ServerStats
	// Health is the daemon's health summary; Degraded means at least
	// one session is quarantined.
	Health = api.Health
	// Batched is the batch-delta response.
	Batched = api.Batched
)

// StatusError is the decoded non-2xx response: the HTTP status code
// plus the daemon's error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("fmerged: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// IsConflict reports whether err is the daemon's 409 — a stale plan (or
// a session-name collision); the standard reaction is to replan.
func IsConflict(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusConflict
}

// IsThrottled reports whether err is an admission-control rejection
// (429 per-client quota or 503 server saturation); the standard
// reaction is to back off and retry.
func IsThrottled(err error) bool {
	var se *StatusError
	return errors.As(err, &se) &&
		(se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable)
}

// Client talks to one daemon. The zero value is not usable; call New.
type Client struct {
	base string
	id   string
	hc   *http.Client
}

// New builds a Client for the daemon at base (e.g.
// "http://127.0.0.1:7433"). id becomes the X-Client-ID header the
// daemon keys its per-client quotas on; empty means the daemon falls
// back to the remote address.
func New(base, id string) *Client {
	return &Client{base: base, id: id, hc: &http.Client{}}
}

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports); it returns c for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.id != "" {
		req.Header.Set("X-Client-ID", c.id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e api.Error
		msg := string(data)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Healthz checks daemon liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Health fetches the daemon's health summary: OK when no session is
// quarantined, Degraded (with the count) otherwise.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

// Stats fetches the daemon's live stats.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// CreateSession opens a named session on the daemon. With a non-empty
// Module the daemon parses and indexes it; with an empty Module the
// daemon restores the module persisted under this name by an earlier
// Snapshot — the warm-restart path (Info.Warm reports whether the index
// snapshot was accepted).
func (c *Client) CreateSession(ctx context.Context, req CreateSession) (*SessionClient, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &SessionClient{c: c, name: req.Name, info: info}, nil
}

// Session addresses an existing daemon session by name (it does not
// verify existence; the first call will).
func (c *Client) Session(name string) *SessionClient {
	return &SessionClient{c: c, name: name}
}

// SessionClient addresses one named daemon session.
type SessionClient struct {
	c    *Client
	name string
	info SessionInfo
}

// CreateInfo returns the SessionInfo from creation time (zero for
// clients built with Session); Info fetches the live one.
func (sc *SessionClient) CreateInfo() SessionInfo { return sc.info }

func (sc *SessionClient) path(suffix string) string {
	return "/v1/sessions/" + url.PathEscape(sc.name) + suffix
}

// Info fetches the live session state.
func (sc *SessionClient) Info(ctx context.Context) (SessionInfo, error) {
	var info SessionInfo
	err := sc.c.do(ctx, http.MethodGet, sc.path(""), nil, &info)
	return info, err
}

// Update splices a textual-IR fragment into the session's module and
// re-indexes the functions it defines, returning their names.
func (sc *SessionClient) Update(ctx context.Context, fragment string) ([]string, error) {
	var out api.Updated
	err := sc.c.do(ctx, http.MethodPost, sc.path("/update"), api.Update{Fragment: fragment}, &out)
	return out.Funcs, err
}

// Remove drops the named functions from the session's candidate set.
func (sc *SessionClient) Remove(ctx context.Context, names ...string) error {
	return sc.c.do(ctx, http.MethodPost, sc.path("/remove"), api.Remove{Names: names}, nil)
}

// Batch ships one coherent delta — a textual-IR fragment to splice
// plus a set of removals — re-indexed daemon-side in a single pass;
// the bulk path when many object deltas land at once. A function both
// defined by the fragment and named in remove fails with 400.
func (sc *SessionClient) Batch(ctx context.Context, fragment string, remove []string) (Batched, error) {
	var out Batched
	err := sc.c.do(ctx, http.MethodPost, sc.path("/batch"), api.Batch{Fragment: fragment, Remove: remove}, &out)
	return out, err
}

// Plan asks the daemon for a merge plan (sharded per the session's
// configuration) without touching the module.
func (sc *SessionClient) Plan(ctx context.Context) (*Plan, error) {
	var plan Plan
	if err := sc.c.do(ctx, http.MethodPost, sc.path("/plan"), nil, &plan); err != nil {
		return nil, err
	}
	return &plan, nil
}

// Apply commits a plan. A plan invalidated by an interleaved commit
// fails with 409 (IsConflict); replan and retry.
func (sc *SessionClient) Apply(ctx context.Context, plan *Plan) (Report, error) {
	var rep Report
	err := sc.c.do(ctx, http.MethodPost, sc.path("/apply"), plan, &rep)
	return rep, err
}

// Optimize runs plan-and-commit in one daemon-side call.
func (sc *SessionClient) Optimize(ctx context.Context) (Report, error) {
	var rep Report
	err := sc.c.do(ctx, http.MethodPost, sc.path("/optimize"), nil, &rep)
	return rep, err
}

// Module fetches the session's current module as textual IR.
func (sc *SessionClient) Module(ctx context.Context) (string, error) {
	var raw []byte
	err := sc.c.do(ctx, http.MethodGet, sc.path("/module"), nil, &raw)
	return string(raw), err
}

// Snapshot persists the session's module text and index snapshot under
// the daemon's snapshot directory, enabling a later warm restart.
func (sc *SessionClient) Snapshot(ctx context.Context) error {
	return sc.c.do(ctx, http.MethodPost, sc.path("/snapshot"), nil, nil)
}

// Close deletes the session on the daemon. Persisted snapshot files
// survive (they are the warm-restart path).
func (sc *SessionClient) Close(ctx context.Context) error {
	return sc.c.do(ctx, http.MethodDelete, sc.path(""), nil, nil)
}
