package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// RetryPolicy retries throttled and conflicted calls with capped
// exponential backoff plus full jitter. The zero value is usable and
// selects the documented defaults; DefaultRetry is that value.
//
// The policy retries exactly the transient daemon vocabulary: 409
// (stale plan — the caller's Retryable hook usually replans first),
// 429 (per-client quota) and 503 (server saturation). Hard errors —
// 4xx mistakes, 500s, transport failures — surface immediately.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, first call included
	// (default 6).
	MaxAttempts int
	// BaseDelay seeds the exponential schedule: attempt n sleeps a
	// uniformly random duration in (0, BaseDelay*2^n], capped at
	// MaxDelay (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep (default 500ms).
	MaxDelay time.Duration
	// Retryable, when non-nil, overrides the default retry predicate
	// (IsThrottled or IsConflict).
	Retryable func(error) bool
	// OnBackoff, when non-nil, observes each scheduled retry: the
	// attempt number (1-based), the error that caused it, and the sleep
	// chosen. Load generators hook this to count backoffs.
	OnBackoff func(attempt int, err error, sleep time.Duration)
}

// DefaultRetry is the zero RetryPolicy: 6 attempts, 5ms base, 500ms
// cap, retrying 409/429/503.
var DefaultRetry = RetryPolicy{}

// Do runs fn until it succeeds, exhausts MaxAttempts, hits a
// non-retryable error, or ctx is done. The last error is returned; a
// context cancellation mid-backoff returns the context's error joined
// with the error being retried.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 6
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 500 * time.Millisecond
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = func(err error) bool { return IsThrottled(err) || IsConflict(err) }
	}

	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= attempts || !retryable(err) {
			return err
		}
		// Full jitter: a uniform draw over (0, min(cap, base<<attempt)]
		// decorrelates clients that were rejected together — the thundering
		// herd that caused the 429/503 must not reconverge on the retry.
		ceil := base << (attempt - 1)
		if ceil > maxDelay || ceil <= 0 {
			ceil = maxDelay
		}
		sleep := time.Duration(rand.Int64N(int64(ceil))) + 1
		if p.OnBackoff != nil {
			p.OnBackoff(attempt, err, sleep)
		}
		select {
		case <-ctx.Done():
			return errors.Join(ctx.Err(), err)
		case <-time.After(sleep):
		}
	}
}

// Retry runs fn under DefaultRetry — the one-liner for callers that
// just want 409/429/503 absorbed:
//
//	err := client.Retry(ctx, func() error {
//	    _, err := sc.Update(ctx, fragment)
//	    return err
//	})
func Retry(ctx context.Context, fn func() error) error {
	return DefaultRetry.Do(ctx, fn)
}
