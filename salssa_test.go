package repro

import (
	"strings"
	"testing"

	"repro/internal/irtext"
	"repro/internal/synth"
)

func TestFacadeParseMergeVerify(t *testing.T) {
	m, err := ParseModule(irtext.Fig2Module)
	if err != nil {
		t.Fatal(err)
	}
	merged, stats, err := MergeFunctions(m, "F1", "F2")
	if err != nil {
		t.Fatal(err)
	}
	if merged == nil || stats == nil {
		t.Fatal("nil result")
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	text := FormatModule(m)
	if !strings.Contains(text, "@merged.F1.F2") {
		t.Error("printed module lacks the merged function")
	}
	// Thunks must remain under the original names.
	if m.FuncByName("F1").IsDecl() || m.FuncByName("F2").IsDecl() {
		t.Error("original names must stay defined (as thunks)")
	}
}

func TestFacadeOptimizeModule(t *testing.T) {
	m := synth.Generate(synth.Profile{
		Name: "facade", Seed: 12, Funcs: 24,
		MinSize: 8, AvgSize: 50, MaxSize: 160,
		CloneFrac: 0.6, FamilySize: 2, MutRate: 0.03, Loops: 0.5,
	})
	before := EstimateSize(m, X86_64)
	rep := OptimizeModule(m, Options{Algorithm: SalSSA, Threshold: 1, Target: X86_64})
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.BaselineBytes != before {
		t.Errorf("baseline bytes %d, want %d", rep.BaselineBytes, before)
	}
	if rep.FinalBytes != EstimateSize(m, X86_64) {
		t.Errorf("final bytes stale: %d vs %d", rep.FinalBytes, EstimateSize(m, X86_64))
	}
	if rep.Reduction() <= 0 {
		t.Errorf("no reduction on a clone-heavy module (%.2f%%)", rep.Reduction())
	}
}

func TestFacadeErrors(t *testing.T) {
	m, err := ParseModule("define void @only() {\ne:\n ret void\n}")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeFunctions(m, "only", "missing"); err == nil {
		t.Error("expected error for missing function")
	}
}
