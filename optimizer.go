package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/transform"
)

// Progress is one observable pipeline event of an Optimize run; see
// WithProgress.
type Progress = driver.Progress

// Stage identifies the pipeline stage a Progress event reports on.
type Stage = driver.Stage

// Pipeline stages.
const (
	// StagePlan is the (possibly parallel) planning stage: alignment and
	// speculative code generation of candidate pairs.
	StagePlan = driver.StagePlan
	// StageCommit is the serial commit stage: profitability checks,
	// thunk creation and ranking updates.
	StageCommit = driver.StageCommit
)

// Optimizer runs whole-module function merging. It is configured once
// with functional options (see New) and is then immutable: a single
// Optimizer may be reused for any number of modules, from any number of
// goroutines concurrently (each call works only on its own module).
type Optimizer struct {
	algorithm   Algorithm
	threshold   int
	target      Target
	linearAlign bool
	maxCells    int64
	minInstrs   int
	skipHot     map[string]bool
	parallelism int
	commitPar   int
	lshBudget   int
	finder      FinderKind
	dupFold     bool
	canon       bool
	maxFamily   int
	// noPlanFunnel inverts WithPlanFunnel so the zero value keeps the
	// funnel on — the default every caller should want.
	noPlanFunnel bool
	progress     func(Progress)
}

// Option configures an Optimizer under construction; see New.
type Option func(*Optimizer) error

// New builds an Optimizer from the given options. Without options the
// defaults match the paper's main configuration: SalSSA, exploration
// threshold 1, the x86-64 size model, quadratic alignment, no size or
// memory limits, serial planning, the exact candidate finder, no
// duplicate folding.
func New(opts ...Option) (*Optimizer, error) {
	o := &Optimizer{
		algorithm:   SalSSA,
		threshold:   1,
		target:      X86_64,
		parallelism: 1,
		maxFamily:   4,
	}
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	// The serialization WithProgress promises must span concurrent
	// Optimize calls sharing this Optimizer, so the mutex lives here,
	// not per run.
	if o.progress != nil {
		inner := o.progress
		var mu sync.Mutex
		o.progress = func(ev Progress) {
			mu.Lock()
			defer mu.Unlock()
			inner(ev)
		}
	}
	return o, nil
}

// WithAlgorithm selects the merging technique (default SalSSA).
func WithAlgorithm(a Algorithm) Option {
	return func(o *Optimizer) error {
		switch a {
		case SalSSA, SalSSANoPC, FMSA:
			o.algorithm = a
			return nil
		default:
			return fmt.Errorf("repro: unknown algorithm %d", int(a))
		}
	}
}

// WithThreshold sets the exploration threshold t: how many ranked
// candidate partners are tried per function (default 1; the paper
// evaluates 1, 5 and 10).
func WithThreshold(t int) Option {
	return func(o *Optimizer) error {
		if t < 1 {
			return fmt.Errorf("repro: threshold must be >= 1, got %d", t)
		}
		o.threshold = t
		return nil
	}
}

// WithTarget selects the object-size model (default X86_64).
func WithTarget(t Target) Option {
	return func(o *Optimizer) error {
		switch t {
		case X86_64, Thumb:
			o.target = t
			return nil
		default:
			return fmt.Errorf("repro: unknown target %d", int(t))
		}
	}
}

// WithLinearAlign switches alignment to Hirschberg's linear-space
// algorithm: the same optimal score in O(n+m) memory for roughly twice
// the time (default off, matching the paper's quadratic DP).
func WithLinearAlign(on bool) Option {
	return func(o *Optimizer) error {
		o.linearAlign = on
		return nil
	}
}

// WithMaxCells caps alignment DP matrices at n cells; pairs needing more
// are skipped rather than aligned (default 0 = unlimited).
func WithMaxCells(n int64) Option {
	return func(o *Optimizer) error {
		if n < 0 {
			return fmt.Errorf("repro: max cells must be >= 0, got %d", n)
		}
		o.maxCells = n
		return nil
	}
}

// WithMinInstrs skips functions smaller than n instructions (default 0 =
// consider every defined function).
func WithMinInstrs(n int) Option {
	return func(o *Optimizer) error {
		if n < 0 {
			return fmt.Errorf("repro: min instrs must be >= 0, got %d", n)
		}
		o.minInstrs = n
		return nil
	}
}

// WithSkipHot excludes the named functions from merging — the paper's
// §5.7 remedy for runtime overhead on hot code paths. Multiple uses
// accumulate.
func WithSkipHot(names ...string) Option {
	return func(o *Optimizer) error {
		if o.skipHot == nil {
			o.skipHot = map[string]bool{}
		}
		for _, n := range names {
			if n == "" {
				return fmt.Errorf("repro: empty function name in skip-hot list")
			}
			o.skipHot[n] = true
		}
		return nil
	}
}

// WithParallelism plans candidate merges in n concurrent workers; the
// commit stage stays serial, so the committed merge set is identical to
// a serial run. n = 0 selects runtime.NumCPU(); n = 1 disables
// speculation (default).
func WithParallelism(n int) Option {
	return func(o *Optimizer) error {
		if n < 0 {
			return fmt.Errorf("repro: parallelism must be >= 0, got %d", n)
		}
		if n == 0 {
			n = runtime.NumCPU()
		}
		o.parallelism = n
		return nil
	}
}

// WithCommitParallelism runs the commit walk component-parallel with up
// to n workers: the candidate graph is partitioned into connected
// components of candidate edges, each component's greedy walk runs
// speculatively on its own worker with dry-run overlays, and a serial
// validated replay commits the captured decisions in the global walk
// order — transplanting a component's decision only after proving its
// candidate list matches what the serial walk would see at that turn,
// re-running the row serially otherwise. The committed module is
// bit-identical to a serial commit at any value. Runs with family
// flattening (WithMaxFamily >= 3) fall back to the serial walk. n = 0
// selects runtime.NumCPU(); n = 1 is the serial walk (default).
func WithCommitParallelism(n int) Option {
	return func(o *Optimizer) error {
		if n < 0 {
			return fmt.Errorf("repro: commit parallelism must be >= 0, got %d", n)
		}
		if n == 0 {
			n = runtime.NumCPU()
		}
		o.commitPar = n
		return nil
	}
}

// WithLSHBudget bounds the LSH finder at n resident band buckets
// (default 0 = unbounded): the least recently written buckets beyond
// the budget are spilled to compact delta-encoded blobs and decoded
// transparently on access, so index memory stays bounded on
// million-function modules. Candidate lists — and therefore the
// committed merge set — are identical at any budget; only query cost
// changes (a fault decodes one bucket). Ignored by the exact finder.
func WithLSHBudget(n int) Option {
	return func(o *Optimizer) error {
		if n < 0 {
			return fmt.Errorf("repro: LSH budget must be >= 0, got %d", n)
		}
		o.lshBudget = n
		return nil
	}
}

// WithFinder selects the candidate-search implementation (default
// ExactFinder). ExactFinder reproduces the paper's brute-force
// fingerprint ranking with an O(n) scan per query; LSHFinder answers
// the same queries from a locality-sensitive index over banded
// fingerprint sketches, scoring only the candidates a
// size-difference bound cannot exclude — the same top-t lists, a
// fraction of the work on large modules.
func WithFinder(k FinderKind) Option {
	return func(o *Optimizer) error {
		switch k {
		case ExactFinder, LSHFinder:
			o.finder = k
			return nil
		default:
			return fmt.Errorf("repro: unknown finder %d", int(k))
		}
	}
}

// WithMaxFamily bounds merge families at k members (default 4). A
// session that re-optimizes an evolving module grows families instead
// of nesting chains: when a merged function finds another profitable
// partner, the family's original bodies plus the newcomer are
// re-merged into one fresh k-ary body behind an integer function
// identifier and every member thunk is rewritten to target it — one
// call hop and one dispatch layer no matter how often the family grew.
// Beyond k members further partners nest pairwise, the historical
// behaviour. k = 2 disables flattening (and the retention of original
// bodies that powers it): every merge stays pairwise.
func WithMaxFamily(k int) Option {
	return func(o *Optimizer) error {
		if k < 2 {
			return fmt.Errorf("repro: max family must be >= 2, got %d", k)
		}
		o.maxFamily = k
		return nil
	}
}

// WithPlanFunnel toggles the planning funnel (default on). The funnel
// screens every candidate pair against an admissible profit upper
// bound before any alignment runs, aborts alignment DPs that provably
// cannot reach a competitive score, and materializes a merged body
// only for trials whose alignment still clears the gate. All three
// stages are conservative — a pruned trial provably could not have
// been committed — so the merge set, folds and final module bytes are
// identical with the funnel on or off; only planning time changes.
// The Report's PairsScreened / DPAborted / TrialsBuilt / TrialsSkipped
// counters show the funnel's work. Ignored under FMSA, whose trials
// run over demoted bodies the screening profiles do not model.
func WithPlanFunnel(on bool) Option {
	return func(o *Optimizer) error {
		o.noPlanFunnel = !on
		return nil
	}
}

// WithDupFold folds structurally identical functions into forwarding
// thunks before any alignment runs (default off). Exact clone families
// — equal up to local value names, detected by a stable GVN-style
// structural hash — are deduplicated for free: each duplicate becomes
// "return representative(args...)" and leaves the candidate set, so no
// alignment DP cells are spent on them. The Report lists the folds.
func WithDupFold(on bool) Option {
	return func(o *Optimizer) error {
		o.dupFold = on
		return nil
	}
}

// WithCanon indexes every function through a private *canonical view*
// (default off): a clone normalized by register promotion, CFG
// simplification, constant folding, operand-order normalization and
// global value numbering. Candidate search — fingerprints, sketches,
// duplicate-fold hashes — then sees through reducible noise between
// near-clones (redundant memory traffic, unfolded constants, commuted
// operands, spurious blocks), and duplicate folding (WithDupFold) widens
// from syntactic identity to canonical congruence, with each
// non-syntactic fold verified by an interpreter differential before it
// commits. Merges and folds still rewrite the original bodies; views
// never appear in the module. With canon off the pipeline is
// bit-for-bit the historical one. FMSA runs ignore the option.
func WithCanon(on bool) Option {
	return func(o *Optimizer) error {
		o.canon = on
		return nil
	}
}

// WithProgress installs an observer for pipeline events. Calls are
// serialized, even across concurrent Optimize calls sharing the
// Optimizer; plan-stage events may be emitted from planning workers, so
// fn should not block for long. A nil fn disables observation.
//
// Concurrent runs sharing one Optimizer (or one Session) interleave
// their events at the callback; Progress.RunID — fresh and monotonic
// per Optimize/Plan/Apply call — attributes each event to its run.
// Events are emitted while the run holds its Session's internal lock,
// so fn must not call back into a Session — it would deadlock.
func WithProgress(fn func(Progress)) Option {
	return func(o *Optimizer) error {
		o.progress = fn
		return nil
	}
}

// Algorithm returns the configured merging technique.
func (o *Optimizer) Algorithm() Algorithm { return o.algorithm }

// Threshold returns the configured exploration threshold.
func (o *Optimizer) Threshold() int { return o.threshold }

// Target returns the configured size-model target.
func (o *Optimizer) Target() Target { return o.target }

// Parallelism returns the configured planning worker count.
func (o *Optimizer) Parallelism() int { return o.parallelism }

// CommitParallelism returns the configured commit-walk worker count.
func (o *Optimizer) CommitParallelism() int { return o.commitPar }

// LSHBudget returns the configured resident-bucket bound of the LSH
// finder (0 = unbounded).
func (o *Optimizer) LSHBudget() int { return o.lshBudget }

// Finder returns the configured candidate-search implementation.
func (o *Optimizer) Finder() FinderKind { return o.finder }

// DupFold reports whether duplicate folding is enabled.
func (o *Optimizer) DupFold() bool { return o.dupFold }

// Canon reports whether canonical-view indexing is enabled.
func (o *Optimizer) Canon() bool { return o.canon }

// MaxFamily returns the configured merge-family bound.
func (o *Optimizer) MaxFamily() int { return o.maxFamily }

// PlanFunnel reports whether the planning funnel is enabled.
func (o *Optimizer) PlanFunnel() bool { return !o.noPlanFunnel }

// config derives the driver configuration. The skip-hot map is shared,
// not copied: the driver only reads it, and the Optimizer is immutable
// after New.
func (o *Optimizer) config() driver.Config {
	cfg := driver.Config{
		Algorithm:   o.algorithm,
		Threshold:   o.threshold,
		Target:      o.target,
		MaxCells:    o.maxCells,
		LinearAlign: o.linearAlign,
		SkipHot:     o.skipHot,
		MinInstrs:   o.minInstrs,
		Finder:      o.finder,
		DupFold:     o.dupFold,
		MaxFamily:   o.maxFamily,
		Parallelism: o.parallelism,
		Progress:    o.progress,

		CommitParallelism: o.commitPar,
		LSHBudget:         o.lshBudget,
		NoPlanFunnel:      o.noPlanFunnel,
	}
	if o.canon {
		cfg.Canon = canon.Default()
	}
	return cfg
}

// Optimize runs function merging over m in place and returns the report
// (committed merges, size reduction, phase timings). It is a one-shot
// session — Open, one Session.Optimize, Close — so its committed merge
// set is exactly the Session path's; callers that re-optimize an
// evolving module should hold a Session open instead and pay only for
// the delta.
//
// The context cancels the run between (and inside) merge trials: on
// cancellation Optimize stops early, leaves every already-committed
// merge in place — the module still verifies — and returns the partial
// report together with ctx.Err().
func (o *Optimizer) Optimize(ctx context.Context, m *Module) (*Report, error) {
	if m == nil {
		return nil, fmt.Errorf("repro: Optimize on nil module")
	}
	return driver.RunContext(ctx, m, o.config())
}

// MergePair merges the two named functions of m unconditionally (no
// profitability check) and replaces the originals with forwarding
// thunks. It returns the merged function and the generator statistics.
//
// The SalSSA generator variants are supported; an FMSA-configured
// Optimizer returns an error because FMSA merges require whole-module
// register demotion (use Optimize instead).
func (o *Optimizer) MergePair(ctx context.Context, m *Module, name1, name2 string) (*Function, *MergeStats, error) {
	if o.algorithm == FMSA {
		return nil, nil, fmt.Errorf("repro: MergePair supports the SalSSA variants only; use Optimize for FMSA")
	}
	if name1 == name2 {
		return nil, nil, fmt.Errorf("repro: cannot merge function %q with itself", name1)
	}
	f1, f2 := m.FuncByName(name1), m.FuncByName(name2)
	if f1 == nil || f2 == nil {
		return nil, nil, fmt.Errorf("repro: function %q or %q not found", name1, name2)
	}
	plan, err := core.PlanParams(f1, f2)
	if err != nil {
		return nil, nil, err
	}
	// The plan is shared between the generator and the thunks below, so
	// parameter unification runs once per pair.
	merged, stats, err := core.MergeWithPlanCtx(ctx, m, f1, f2, driver.MergedName(m, f1, f2), plan, o.config().CoreOptions())
	if err != nil {
		return nil, nil, err
	}
	transform.Simplify(merged)
	core.BuildThunk(f1, merged, 0, plan.Maps[0], plan)
	core.BuildThunk(f2, merged, 1, plan.Maps[1], plan)
	return merged, stats, nil
}

// MergeFamily merges the k named functions of m unconditionally (no
// profitability check) into one k-ary body behind a function identifier
// and replaces every original with a forwarding thunk. Two names are
// exactly MergePair (i1 identifier); beyond two the members are aligned
// progressively against the growing merged skeleton and dispatched on
// an i32 identifier. It returns the merged function and the generator
// statistics.
//
// The SalSSA generator variants are supported; an FMSA-configured
// Optimizer returns an error because FMSA merges require whole-module
// register demotion (use Optimize instead).
func (o *Optimizer) MergeFamily(ctx context.Context, m *Module, names ...string) (*Function, *MergeStats, error) {
	if o.algorithm == FMSA {
		return nil, nil, fmt.Errorf("repro: MergeFamily supports the SalSSA variants only; use Optimize for FMSA")
	}
	if len(names) < 2 {
		return nil, nil, fmt.Errorf("repro: MergeFamily needs at least two functions, got %d", len(names))
	}
	members := make([]*Function, len(names))
	seen := map[string]bool{}
	for i, name := range names {
		if seen[name] {
			return nil, nil, fmt.Errorf("repro: cannot merge function %q with itself", name)
		}
		seen[name] = true
		f := m.FuncByName(name)
		if f == nil {
			return nil, nil, fmt.Errorf("repro: function %q not found", name)
		}
		members[i] = f
	}
	plan, err := core.PlanParams(members...)
	if err != nil {
		return nil, nil, err
	}
	merged, stats, err := core.MergeFamilyWithPlanCtx(ctx, m, members, driver.MergedFamilyName(m, names), plan, o.config().CoreOptions())
	if err != nil {
		return nil, nil, err
	}
	transform.Simplify(merged)
	for i, f := range members {
		core.BuildThunk(f, merged, i, plan.Maps[i], plan)
	}
	return merged, stats, nil
}
