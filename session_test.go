package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ir"
)

// TestSessionOptimizeMatchesOneShot is the public face of the
// differential criterion: a Session's first Optimize must commit
// exactly what the one-shot Optimizer.Optimize commits, at any
// parallelism, for both finders with dup-fold on and off.
func TestSessionOptimizeMatchesOneShot(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		base := synthModule(seed)
		for _, finder := range []FinderKind{ExactFinder, LSHFinder} {
			for _, fold := range []bool{false, true} {
				for _, jobs := range []int{1, 4} {
					name := fmt.Sprintf("seed%d-%v-fold=%v-jobs=%d", seed, finder, fold, jobs)
					t.Run(name, func(t *testing.T) {
						opt, err := New(WithThreshold(2), WithFinder(finder),
							WithDupFold(fold), WithParallelism(jobs))
						if err != nil {
							t.Fatal(err)
						}
						m1 := ir.CloneModule(base)
						oneShot, err := opt.Optimize(context.Background(), m1)
						if err != nil {
							t.Fatal(err)
						}
						m2 := ir.CloneModule(base)
						s, err := opt.Open(context.Background(), m2)
						if err != nil {
							t.Fatal(err)
						}
						defer s.Close()
						viaSession, err := s.Optimize(context.Background())
						if err != nil {
							t.Fatal(err)
						}
						if len(oneShot.Merges) != len(viaSession.Merges) {
							t.Fatalf("merge counts differ: one-shot %d, session %d",
								len(oneShot.Merges), len(viaSession.Merges))
						}
						for i := range oneShot.Merges {
							a, b := oneShot.Merges[i], viaSession.Merges[i]
							if a.F1 != b.F1 || a.F2 != b.F2 || a.Merged != b.Merged || a.Profit != b.Profit {
								t.Errorf("merge %d differs: one-shot %+v, session %+v", i, a, b)
							}
						}
						if a, b := FormatModule(m1), FormatModule(m2); a != b {
							t.Error("session module text diverges from one-shot Optimize")
						}
						if err := VerifyModule(m2); err != nil {
							t.Fatalf("session module does not verify: %v", err)
						}
					})
				}
			}
		}
	}
}

// TestSessionIncrementalWorkflow exercises the full public incremental
// loop: optimize, delete a function, Update, re-optimize — and checks
// the outcome memo kicks in at fixpoint.
func TestSessionIncrementalWorkflow(t *testing.T) {
	m := synthModule(5)
	opt, err := New(WithThreshold(2), WithFinder(LSHFinder))
	if err != nil {
		t.Fatal(err)
	}
	s, err := opt.Open(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Drive to fixpoint, then confirm the steady-state run is memo-served.
	for i := 0; i < 5; i++ {
		res, err := s.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Merges) == 0 {
			break
		}
	}
	steady, err := s.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(steady.Merges) == 0 && steady.Attempts > 0 && steady.OutcomeHits != steady.Attempts {
		t.Errorf("steady state re-planned %d of %d trials", steady.Attempts-steady.OutcomeHits, steady.Attempts)
	}

	// Delete an unreferenced function and report it.
	referenced := map[*Function]bool{}
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instruction) bool {
			for _, op := range in.Operands() {
				if g, ok := op.(*Function); ok {
					referenced[g] = true
				}
			}
			return true
		})
	}
	for _, f := range m.Defined() {
		if !referenced[f] {
			name := f.Name()
			m.RemoveFunc(f)
			if err := s.Update(context.Background(), name); err != nil {
				t.Fatalf("Update of deleted function: %v", err)
			}
			break
		}
	}
	if _, err := s.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("module does not verify after incremental loop: %v", err)
	}
}

// TestSessionPlanApplyPublic: the Plan/Apply split through the public
// API, including the JSON round trip a service would ship across a
// process boundary.
func TestSessionPlanApplyPublic(t *testing.T) {
	base := synthModule(7)
	opt, err := New(WithThreshold(2))
	if err != nil {
		t.Fatal(err)
	}

	m := ir.CloneModule(base)
	s, err := opt.Open(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := FormatModule(m)
	plan, err := s.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if FormatModule(m) != before {
		t.Fatal("Plan mutated the module")
	}
	if len(plan.Merges) == 0 {
		t.Skip("no merges proposed on this module")
	}

	blob, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var shipped MergePlan
	if err := json.Unmarshal(blob, &shipped); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Apply(context.Background(), &shipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Merges) != len(plan.Merges) {
		t.Fatalf("applied %d merges, planned %d", len(rep.Merges), len(plan.Merges))
	}
	for i := range rep.Merges {
		if rep.Merges[i].Merged != plan.Merges[i].Merged {
			t.Errorf("merge %d landed as @%s, plan promised @%s",
				i, rep.Merges[i].Merged, plan.Merges[i].Merged)
		}
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("applied module does not verify: %v", err)
	}
}

// TestOpenNilModule: Open validates its module like Optimize does.
func TestOpenNilModule(t *testing.T) {
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Open(context.Background(), nil); err == nil {
		t.Error("Open(nil) should error")
	}
}

// TestProgressRunIDAttribution: concurrent Optimize calls sharing one
// Optimizer must be attributable at the progress callback via RunID —
// the satellite that removes the old WithProgress caveat.
func TestProgressRunIDAttribution(t *testing.T) {
	const runs = 4
	events := map[int64]int{}
	opt, err := New(WithThreshold(2), WithParallelism(2),
		WithProgress(func(ev Progress) {
			// Serialized by WithProgress even across concurrent runs.
			events[ev.RunID]++
		}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < runs; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			m := synthModule(seed)
			if _, err := opt.Optimize(context.Background(), m); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if len(events) != runs {
		t.Errorf("events attribute to %d distinct RunIDs, want %d: %v", len(events), runs, events)
	}
	for id, n := range events {
		if id <= 0 {
			t.Errorf("non-positive RunID %d", id)
		}
		if n == 0 {
			t.Errorf("RunID %d has no events", id)
		}
	}
}

// TestMergePairSelf: merging a function with itself is a clear error,
// not a self-referential thunk.
func TestMergePairSelf(t *testing.T) {
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	m := synthModule(3)
	name := m.Defined()[0].Name()
	before := FormatModule(m)
	if _, _, err := opt.MergePair(context.Background(), m, name, name); err == nil {
		t.Fatal("MergePair(f, f) should error")
	}
	if FormatModule(m) != before {
		t.Error("failed self-merge mutated the module")
	}
}

// TestOptimizeModuleNormalizes: the deprecated shim must normalize
// invalid Algorithm/Target values to the defaults instead of passing
// them through unvalidated.
func TestOptimizeModuleNormalizes(t *testing.T) {
	base := synthModule(9)

	m1 := ir.CloneModule(base)
	bogus := OptimizeModule(m1, Options{Algorithm: Algorithm(97), Threshold: -2, Target: Target(42)})

	m2 := ir.CloneModule(base)
	def := OptimizeModule(m2, Options{})

	if bogus.Algorithm != SalSSA {
		t.Errorf("bogus algorithm ran as %v, want SalSSA", bogus.Algorithm)
	}
	if len(bogus.Merges) != len(def.Merges) || bogus.FinalBytes != def.FinalBytes {
		t.Errorf("normalized run differs from defaults: %d merges %d bytes vs %d merges %d bytes",
			len(bogus.Merges), bogus.FinalBytes, len(def.Merges), def.FinalBytes)
	}
	if a, b := FormatModule(m1), FormatModule(m2); a != b {
		t.Error("normalized shim run diverges from the default run")
	}
	if err := VerifyModule(m1); err != nil {
		t.Fatalf("shim module does not verify: %v", err)
	}
}
