package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/synth"
)

func synthModule(seed int64) *Module {
	return synth.Generate(synth.Profile{
		Name: "api", Seed: seed, Funcs: 24,
		MinSize: 8, AvgSize: 50, MaxSize: 160,
		CloneFrac: 0.6, FamilySize: 2, MutRate: 0.03, Loops: 0.5,
	})
}

func TestNewDefaults(t *testing.T) {
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if o.Algorithm() != SalSSA {
		t.Errorf("default algorithm = %v, want SalSSA", o.Algorithm())
	}
	if o.Threshold() != 1 {
		t.Errorf("default threshold = %d, want 1", o.Threshold())
	}
	if o.Target() != X86_64 {
		t.Errorf("default target = %v, want X86_64", o.Target())
	}
	if o.Parallelism() != 1 {
		t.Errorf("default parallelism = %d, want 1", o.Parallelism())
	}
	if o.Finder() != ExactFinder {
		t.Errorf("default finder = %v, want ExactFinder", o.Finder())
	}
	if o.DupFold() {
		t.Error("duplicate folding on by default, want off")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  Option
	}{
		{"threshold zero", WithThreshold(0)},
		{"threshold negative", WithThreshold(-3)},
		{"algorithm unknown", WithAlgorithm(Algorithm(42))},
		{"target unknown", WithTarget(Target(42))},
		{"max cells negative", WithMaxCells(-1)},
		{"min instrs negative", WithMinInstrs(-1)},
		{"parallelism negative", WithParallelism(-2)},
		{"skip-hot empty name", WithSkipHot("f", "")},
		{"finder unknown", WithFinder(FinderKind(42))},
	}
	for _, tc := range bad {
		if _, err := New(tc.opt); err == nil {
			t.Errorf("New(%s): expected error", tc.name)
		}
	}

	o, err := New(
		WithAlgorithm(SalSSANoPC),
		WithThreshold(5),
		WithTarget(Thumb),
		WithLinearAlign(true),
		WithMaxCells(1<<20),
		WithMinInstrs(4),
		WithSkipHot("hot1", "hot2"),
		WithParallelism(3),
		WithFinder(LSHFinder),
		WithDupFold(true),
		WithProgress(func(Progress) {}),
	)
	if err != nil {
		t.Fatalf("valid option set rejected: %v", err)
	}
	if o.Algorithm() != SalSSANoPC || o.Threshold() != 5 || o.Target() != Thumb || o.Parallelism() != 3 {
		t.Errorf("options not applied: %+v", o)
	}
	if o.Finder() != LSHFinder || !o.DupFold() {
		t.Errorf("finder options not applied: finder=%v dupFold=%v", o.Finder(), o.DupFold())
	}
}

// TestWithDupFoldReportsFolds: the public pipeline must surface fold
// records and finder accounting in the Report.
func TestWithDupFoldReportsFolds(t *testing.T) {
	base := synth.Generate(synth.Profile{
		Name: "apifold", Seed: 3, Funcs: 12,
		MinSize: 10, AvgSize: 50, MaxSize: 120,
		CloneFrac: 0.7, FamilySize: 3, MutRate: 0, Loops: 0.5,
	})
	o, err := New(WithDupFold(true), WithFinder(LSHFinder))
	if err != nil {
		t.Fatal(err)
	}
	m := ir.CloneModule(base)
	rep, err := o.Optimize(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Folds) == 0 {
		t.Fatal("no folds reported on an identical-clone module")
	}
	if rep.Search.Queries == 0 {
		t.Error("no finder queries reported")
	}
	for _, fr := range rep.Folds {
		dup := m.FuncByName(fr.Dup)
		if dup == nil {
			t.Fatalf("folded function @%s vanished", fr.Dup)
		}
		if n := dup.NumInstrs(); n > 2 {
			t.Errorf("folded @%s still has %d instructions, want a forwarder", fr.Dup, n)
		}
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("folded module does not verify: %v", err)
	}
}

func TestWithParallelismZeroMeansNumCPU(t *testing.T) {
	o, err := New(WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	if o.Parallelism() != runtime.NumCPU() {
		t.Errorf("WithParallelism(0) = %d, want runtime.NumCPU() = %d",
			o.Parallelism(), runtime.NumCPU())
	}
}

// TestDeprecatedShimEquivalence: the deprecated OptimizeModule must
// produce exactly the serial Optimizer's result.
func TestDeprecatedShimEquivalence(t *testing.T) {
	base := synthModule(7)

	m1 := ir.CloneModule(base)
	old := OptimizeModule(m1, Options{Algorithm: SalSSA, Threshold: 2, Target: X86_64})

	o, err := New(WithThreshold(2))
	if err != nil {
		t.Fatal(err)
	}
	m2 := ir.CloneModule(base)
	rep, err := o.Optimize(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}

	if len(old.Merges) != len(rep.Merges) {
		t.Fatalf("merge counts differ: shim %d, optimizer %d", len(old.Merges), len(rep.Merges))
	}
	for i := range old.Merges {
		a, b := old.Merges[i], rep.Merges[i]
		if a.F1 != b.F1 || a.F2 != b.F2 || a.Merged != b.Merged || a.Profit != b.Profit || a.Committed != b.Committed {
			t.Errorf("merge %d differs: shim %+v, optimizer %+v", i, a, b)
		}
	}
	if old.BaselineBytes != rep.BaselineBytes || old.FinalBytes != rep.FinalBytes {
		t.Errorf("byte accounting differs: shim %d->%d, optimizer %d->%d",
			old.BaselineBytes, old.FinalBytes, rep.BaselineBytes, rep.FinalBytes)
	}
	if old.Attempts != rep.Attempts {
		t.Errorf("attempts differ: shim %d, optimizer %d", old.Attempts, rep.Attempts)
	}
}

// TestParallelSameCommittedMerges: WithParallelism(4) must commit the
// same merge set as a serial run and still yield a verifying module.
// This test is the public-API face of the -race acceptance criterion.
func TestParallelSameCommittedMerges(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		base := synthModule(seed)

		serialM := ir.CloneModule(base)
		serialOpt, err := New(WithThreshold(2))
		if err != nil {
			t.Fatal(err)
		}
		serial, err := serialOpt.Optimize(context.Background(), serialM)
		if err != nil {
			t.Fatal(err)
		}

		parM := ir.CloneModule(base)
		parOpt, err := New(WithThreshold(2), WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		par, err := parOpt.Optimize(context.Background(), parM)
		if err != nil {
			t.Fatal(err)
		}

		if len(serial.Merges) != len(par.Merges) {
			t.Fatalf("seed %d: merge counts differ: serial %d, parallel %d",
				seed, len(serial.Merges), len(par.Merges))
		}
		for i := range serial.Merges {
			a, b := serial.Merges[i], par.Merges[i]
			if a.F1 != b.F1 || a.F2 != b.F2 || a.Merged != b.Merged || a.Profit != b.Profit {
				t.Errorf("seed %d merge %d differs: serial %+v, parallel %+v", seed, i, a, b)
			}
		}
		if serial.FinalBytes != par.FinalBytes {
			t.Errorf("seed %d: final bytes differ: serial %d, parallel %d",
				seed, serial.FinalBytes, par.FinalBytes)
		}
		if err := VerifyModule(parM); err != nil {
			t.Fatalf("seed %d: parallel-merged module does not verify: %v", seed, err)
		}
	}
}

// TestOptimizerReusableConcurrently: one Optimizer, many goroutines,
// each with its own module. The progress callback increments an
// unsynchronized counter on purpose — WithProgress guarantees calls are
// serialized even across concurrent Optimize calls, and -race verifies
// it.
func TestOptimizerReusableConcurrently(t *testing.T) {
	events := 0
	o, err := New(WithThreshold(2), WithParallelism(2),
		WithProgress(func(Progress) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			m := synthModule(seed)
			if _, err := o.Optimize(context.Background(), m); err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			if err := VerifyModule(m); err != nil {
				errs <- fmt.Errorf("seed %d: verify: %w", seed, err)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if events == 0 {
		t.Error("progress callback never fired")
	}
}

// TestOptimizeCancellation: cancelling mid-run stops the pipeline with
// ctx.Err() but leaves a consistent module.
func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	o, err := New(WithProgress(func(ev Progress) {
		if ev.Stage == StageCommit {
			once.Do(cancel)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	m := synthModule(9)
	rep, err := o.Optimize(ctx, m)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled Optimize returned nil report")
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("cancelled run left a broken module: %v", err)
	}
}

func TestOptimizeNilModule(t *testing.T) {
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Optimize(context.Background(), nil); err == nil {
		t.Error("Optimize(nil) should error")
	}
}

func TestMergePair(t *testing.T) {
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseModule(irtext.Fig2Module)
	if err != nil {
		t.Fatal(err)
	}
	merged, stats, err := o.MergePair(context.Background(), m, "F1", "F2")
	if err != nil {
		t.Fatal(err)
	}
	if merged == nil || stats == nil {
		t.Fatal("nil result")
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}

	if _, _, err := o.MergePair(context.Background(), m, "F1", "missing"); err == nil {
		t.Error("expected error for missing function")
	}

	fmsaOpt, err := New(WithAlgorithm(FMSA))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fmsaOpt.MergePair(context.Background(), m, "F1", "F2"); err == nil {
		t.Error("FMSA MergePair should error")
	}
}

// TestMergePairNameCollision: a function already named like the merged
// result must not be clobbered in the module's name index.
func TestMergePairNameCollision(t *testing.T) {
	src := irtext.Fig2Module + "\ndefine void @merged.F1.F2() {\ne:\n  ret void\n}\n"
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := o.MergePair(context.Background(), m, "F1", "F2")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Name() == "merged.F1.F2" {
		t.Errorf("merged function reused the taken name %q", merged.Name())
	}
	if m.FuncByName("merged.F1.F2") == nil || m.FuncByName(merged.Name()) != merged {
		t.Error("module name index corrupted by collision")
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMergePairCancelled: a pre-cancelled context aborts the merge and
// leaves the module exactly as it was.
func TestMergePairCancelled(t *testing.T) {
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseModule(irtext.Fig2Module)
	if err != nil {
		t.Fatal(err)
	}
	before := FormatModule(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := o.MergePair(ctx, m, "F1", "F2"); err == nil {
		t.Fatal("cancelled MergePair should error")
	}
	if after := FormatModule(m); after != before {
		t.Error("cancelled MergePair mutated the module")
	}
}

// TestSkipHotRespected via the public API.
func TestSkipHotRespected(t *testing.T) {
	base := synthModule(11)
	free, err := New(WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := free.Optimize(context.Background(), ir.CloneModule(base))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Merges) == 0 {
		t.Skip("no merges on this module")
	}
	hot := rep.Merges[0].F1
	o, err := New(WithThreshold(1), WithSkipHot(hot))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := o.Optimize(context.Background(), ir.CloneModule(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rep2.Merges {
		if rec.F1 == hot || rec.F2 == hot {
			t.Errorf("skip-hot function %q was merged anyway", hot)
		}
	}
}
