package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/synth"
)

// famSynthModule generates a module dominated by one k-member clone
// family and returns it with the names of k same-signature functions.
func famSynthModule(seed int64, k int) (*Module, []string) {
	m := synth.Generate(synth.Profile{
		Name: "famapi", Seed: seed, Funcs: 10,
		MinSize: 10, AvgSize: 50, MaxSize: 120,
		CloneFrac: 0.8, FamilySize: k, MutRate: 0.06,
		Loops: 0.6, Switches: 0.5,
	})
	defined := m.Defined()
	for i, f := range defined {
		fam := []string{f.Name()}
		for j := i + 1; j < len(defined) && len(fam) < k; j++ {
			if ir.TypesEqual(f.Sig().Ret, defined[j].Sig().Ret) {
				fam = append(fam, defined[j].Name())
			}
		}
		if len(fam) == k {
			return m, fam
		}
	}
	return m, nil
}

// TestMergeFamilyPublic: the facade's MergeFamily merges k originals
// behind one function identifier, thunks all of them, and preserves
// every member's observable behaviour.
func TestMergeFamilyPublic(t *testing.T) {
	for k := 2; k <= 4; k++ {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			m, names := famSynthModule(int64(10+k), k)
			if names == nil {
				t.Fatal("no same-signature family generated")
			}
			orig := ir.CloneModule(m)
			opt, err := New()
			if err != nil {
				t.Fatal(err)
			}
			merged, stats, err := opt.MergeFamily(context.Background(), m, names...)
			if err != nil {
				t.Fatalf("MergeFamily: %v", err)
			}
			if stats.Matches == 0 {
				t.Error("no matches reported")
			}
			if err := VerifyModule(m); err != nil {
				t.Fatalf("module does not verify after MergeFamily: %v", err)
			}
			wantFid := ir.Type(ir.I32)
			if k == 2 {
				wantFid = ir.I1
			}
			if !ir.TypesEqual(merged.Param(0).Type(), wantFid) {
				t.Errorf("fid type = %v, want %v", merged.Param(0).Type(), wantFid)
			}
			for _, name := range names {
				of := orig.FuncByName(name)
				nf := m.FuncByName(name)
				for s := int64(1); s <= 6; s++ {
					a := interp.Run(nil, of, interp.ArgsFor(of, s))
					b := interp.Run(nil, nf, interp.ArgsFor(nf, s))
					if same, why := interp.SameBehavior(a, b); !same {
						t.Fatalf("@%s seed %d: %s", name, s, why)
					}
				}
			}
		})
	}
}

// TestMergeFamilyValidation: the facade rejects bad member lists and
// the FMSA algorithm with clear errors.
func TestMergeFamilyValidation(t *testing.T) {
	m, names := famSynthModule(3, 3)
	if names == nil {
		t.Fatal("no family generated")
	}
	opt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := opt.MergeFamily(context.Background(), m, names[0]); err == nil {
		t.Error("expected error for a single name")
	}
	if _, _, err := opt.MergeFamily(context.Background(), m, names[0], names[0]); err == nil {
		t.Error("expected error for a repeated name")
	}
	if _, _, err := opt.MergeFamily(context.Background(), m, names[0], "no.such.function"); err == nil {
		t.Error("expected error for an unknown name")
	}
	fmsaOpt, err := New(WithAlgorithm(FMSA))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fmsaOpt.MergeFamily(context.Background(), m, names...); err == nil {
		t.Error("expected error for FMSA MergeFamily")
	}
}

// TestWithMaxFamilyValidation: the option rejects bounds below two and
// the default is four.
func TestWithMaxFamilyValidation(t *testing.T) {
	if _, err := New(WithMaxFamily(1)); err == nil {
		t.Error("expected error for max family 1")
	}
	o, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxFamily() != 4 {
		t.Errorf("default MaxFamily = %d, want 4", o.MaxFamily())
	}
	o, err = New(WithMaxFamily(2))
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxFamily() != 2 {
		t.Errorf("MaxFamily = %d, want 2", o.MaxFamily())
	}
}

// TestSessionFlatteningPublic: through the public Session, repeated
// optimizes of a chain-rich module flatten (Report.Families populated)
// and behaviour is preserved end to end.
func TestSessionFlatteningPublic(t *testing.T) {
	m, _ := famSynthModule(7, 3)
	orig := ir.CloneModule(m)
	opt, err := New(WithThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := opt.Open(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	flattened := 0
	var last *Report
	for i := 0; i < 8; i++ {
		res, err := s.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		flattened += res.Flattened
		last = res
		if len(res.Merges) == 0 {
			break
		}
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("module does not verify: %v", err)
	}
	if last.Families > 0 && len(last.FamilySizes) == 0 {
		t.Error("Families reported without FamilySizes")
	}
	for _, of := range orig.Defined() {
		nf := m.FuncByName(of.Name())
		if nf == nil {
			t.Fatalf("@%s vanished", of.Name())
		}
		for s := int64(1); s <= 4; s++ {
			a := interp.Run(nil, of, interp.ArgsFor(of, s))
			b := interp.Run(nil, nf, interp.ArgsFor(nf, s))
			if same, why := interp.SameBehavior(a, b); !same {
				t.Fatalf("@%s seed %d: %s", of.Name(), s, why)
			}
		}
	}
	_ = flattened
}
