// Package repro is SalSSA: function merging in the SSA form (Rocha,
// Petoumenos, Wang, Cole, Leather — "Effective Function Merging in the
// SSA Form", PLDI 2020), reimplemented as a self-contained Go library.
//
// The public surface centres on the Optimizer:
//
//   - ParseModule / FormatModule: the textual IR (an LLVM-like dialect);
//   - New + Option (WithAlgorithm, WithThreshold, WithTarget,
//     WithLinearAlign, WithMaxCells, WithMinInstrs, WithSkipHot,
//     WithFinder, WithDupFold, WithMaxFamily, WithParallelism,
//     WithProgress): build a reusable, concurrency-safe Optimizer;
//   - (*Optimizer).Optimize: the whole-module pipeline — candidate
//     ranking, parallel merge planning, the profitability cost model,
//     thunk creation — with context cancellation;
//   - (*Optimizer).Open + Session: the long-lived engine — indexes built
//     once, maintained incrementally (Update/Remove) as the module
//     evolves, with a Plan/Apply split for dry runs and deferred,
//     filtered commits;
//   - (*Optimizer).MergePair / MergeFamily: merge one pair — or a k-ary
//     family behind an integer function identifier — unconditionally
//     and inspect the generator's statistics;
//   - EstimateSize: the per-target object-size model used to decide
//     profitability and to report reductions.
//
// OptimizeModule, Options and MergeFunctions are deprecated shims over
// the Optimizer, kept for source compatibility with the original facade.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// system inventory.
package repro

import (
	"context"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/driver"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/search"
)

// Re-exported substrate types. The ir package is internal; these aliases
// are the supported public surface.
type (
	// Module is a translation unit of IR functions and globals.
	Module = ir.Module
	// Function is an IR function.
	Function = ir.Function
	// MergeStats reports what the SalSSA code generator did for a pair.
	MergeStats = core.Stats
	// Report is the outcome of a whole-module merging run.
	Report = driver.Result
	// MergeRecord describes one committed merge within a Report.
	MergeRecord = driver.MergeRecord
	// FoldRecord describes one duplicate fold within a Report (see
	// WithDupFold).
	FoldRecord = driver.FoldRecord
	// SearchStats reports the candidate finder's query accounting
	// within a Report.
	SearchStats = search.Stats
	// AlignCacheStats reports the per-run linearization/class cache
	// within a Report: alignment trials reuse one interned sequence per
	// function instead of re-walking types per candidate pair.
	AlignCacheStats = align.CacheStats
)

// Algorithm selects the merging technique.
type Algorithm = driver.Algorithm

// Supported merging algorithms.
const (
	// SalSSA is the paper's technique (phi-node support, dominance
	// repair, phi-node coalescing, xor-branch rewriting).
	SalSSA = driver.SalSSA
	// SalSSANoPC is SalSSA without phi-node coalescing.
	SalSSANoPC = driver.SalSSANoPC
	// FMSA is the CGO'19 baseline (register demotion + promotion).
	FMSA = driver.FMSA
)

// FinderKind selects the candidate-search implementation (see
// WithFinder).
type FinderKind = search.Kind

// Supported candidate finders.
const (
	// ExactFinder is the paper's §5.1 brute-force fingerprint ranking:
	// exact top-t candidate lists from an O(n) scan per query. The
	// committed merge set is bit-identical to the historical pipeline
	// at any parallelism.
	ExactFinder = search.KindExact
	// LSHFinder indexes banded minhash sketches of the functions and
	// answers candidate queries from locality-sensitive buckets plus a
	// size-bounded branch-and-bound: the same top-t lists as
	// ExactFinder, from sub-linear query work. On large modules
	// candidate discovery stops being the O(n²) bottleneck.
	LSHFinder = search.KindLSH
)

// Target selects the object-size model.
type Target = costmodel.Target

// Size-model targets.
const (
	// X86_64 models the paper's SPEC experiments.
	X86_64 = costmodel.X86_64
	// Thumb models the paper's MiBench experiments.
	Thumb = costmodel.Thumb
)

// ParseModule parses the textual IR dialect.
func ParseModule(src string) (*Module, error) { return irtext.Parse(src) }

// SpliceModule splices a textual IR fragment into a live module — the
// wire format for streaming module deltas to a long-lived Session. The
// fragment may add globals and functions and, unlike ParseModule,
// redefine the body of an existing function; redefinition preserves
// pointer identity, so call sites elsewhere in the module stay valid.
// The whole fragment is validated first: on error the module is
// untouched. It returns the names of the functions the fragment
// defined, which is exactly the list to pass to Session.Update.
func SpliceModule(m *Module, src string) ([]string, error) {
	return irtext.ParseInto(m, src)
}

// FormatModule renders a module in the textual IR dialect.
func FormatModule(m *Module) string { return m.String() }

// VerifyModule checks structural and SSA well-formedness of every
// function in m.
func VerifyModule(m *Module) error { return ir.VerifyModule(m) }

// EstimateSize returns the estimated object size of m in bytes for the
// target.
func EstimateSize(m *Module, target Target) int {
	return costmodel.ModuleBytes(m, target)
}

// Options configures OptimizeModule.
//
// Deprecated: build an Optimizer with New and functional options
// instead; Options reaches only three of the pipeline's knobs.
type Options struct {
	// Algorithm is the merging technique (default SalSSA).
	Algorithm Algorithm
	// Threshold is the exploration threshold t: how many ranked
	// candidate partners are tried per function (default 1).
	Threshold int
	// Target selects the size model (default X86_64).
	Target Target
}

// OptimizeModule runs function merging over m in place and returns the
// report (committed merges, size reduction, phase timings).
//
// Out-of-range option values are normalized to the defaults rather than
// rejected: an unknown Algorithm runs SalSSA, an unknown Target prices
// for X86_64, and a Threshold below 1 becomes 1 — the historical facade
// never validated, and silently passing unknown enum values through to
// the pipeline is worse than either erroring or defaulting.
//
// Deprecated: use New(...).Optimize(ctx, m), which adds cancellation,
// parallel planning, progress observation, validation errors and the
// remaining pipeline knobs. OptimizeModule is equivalent to a serial
// Optimizer run.
func OptimizeModule(m *Module, opts Options) *Report {
	// Start from New's defaults (it cannot fail without options), then
	// override directly with the normalized values: the old facade's
	// signature has no error result, so the validating option
	// constructors cannot be used.
	o, _ := New()
	switch opts.Algorithm {
	case SalSSA, SalSSANoPC, FMSA:
		o.algorithm = opts.Algorithm
	default:
		o.algorithm = SalSSA
	}
	switch opts.Target {
	case X86_64, Thumb:
		o.target = opts.Target
	default:
		o.target = X86_64
	}
	o.threshold = opts.Threshold
	if o.threshold <= 0 {
		o.threshold = 1
	}
	rep, _ := o.Optimize(context.Background(), m)
	return rep
}

// MergeFunctions merges the two named functions of m with SalSSA,
// unconditionally (no profitability check), and replaces the originals
// with forwarding thunks. It returns the merged function and the
// generator statistics.
//
// Deprecated: use New(...).MergePair(ctx, m, name1, name2), which adds
// cancellation and honours the Optimizer's alignment options.
func MergeFunctions(m *Module, name1, name2 string) (*Function, *MergeStats, error) {
	o, _ := New()
	return o.MergePair(context.Background(), m, name1, name2)
}
