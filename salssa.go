// Package repro is SalSSA: function merging in the SSA form (Rocha,
// Petoumenos, Wang, Cole, Leather — "Effective Function Merging in the
// SSA Form", PLDI 2020), reimplemented as a self-contained Go library.
//
// The package is a facade over the implementation:
//
//   - ParseModule / FormatModule: the textual IR (an LLVM-like dialect);
//   - MergeFunctions: merge one pair with SalSSA (or the FMSA baseline)
//     and inspect the generator's statistics;
//   - OptimizeModule: the whole-module pipeline — candidate ranking,
//     pairwise merging, the profitability cost model, thunk creation;
//   - EstimateSize: the per-target object-size model used to decide
//     profitability and to report reductions.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// system inventory.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/driver"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/transform"
)

// Re-exported substrate types. The ir package is internal; these aliases
// are the supported public surface.
type (
	// Module is a translation unit of IR functions and globals.
	Module = ir.Module
	// Function is an IR function.
	Function = ir.Function
	// MergeStats reports what the SalSSA code generator did for a pair.
	MergeStats = core.Stats
	// Report is the outcome of a whole-module merging run.
	Report = driver.Result
	// MergeRecord describes one committed merge within a Report.
	MergeRecord = driver.MergeRecord
)

// Algorithm selects the merging technique.
type Algorithm = driver.Algorithm

// Supported merging algorithms.
const (
	// SalSSA is the paper's technique (phi-node support, dominance
	// repair, phi-node coalescing, xor-branch rewriting).
	SalSSA = driver.SalSSA
	// SalSSANoPC is SalSSA without phi-node coalescing.
	SalSSANoPC = driver.SalSSANoPC
	// FMSA is the CGO'19 baseline (register demotion + promotion).
	FMSA = driver.FMSA
)

// Target selects the object-size model.
type Target = costmodel.Target

// Size-model targets.
const (
	// X86_64 models the paper's SPEC experiments.
	X86_64 = costmodel.X86_64
	// Thumb models the paper's MiBench experiments.
	Thumb = costmodel.Thumb
)

// Options configures OptimizeModule.
type Options struct {
	// Algorithm is the merging technique (default SalSSA).
	Algorithm Algorithm
	// Threshold is the exploration threshold t: how many ranked
	// candidate partners are tried per function (default 1).
	Threshold int
	// Target selects the size model (default X86_64).
	Target Target
}

// ParseModule parses the textual IR dialect.
func ParseModule(src string) (*Module, error) { return irtext.Parse(src) }

// FormatModule renders a module in the textual IR dialect.
func FormatModule(m *Module) string { return m.String() }

// VerifyModule checks structural and SSA well-formedness of every
// function in m.
func VerifyModule(m *Module) error { return ir.VerifyModule(m) }

// EstimateSize returns the estimated object size of m in bytes for the
// target.
func EstimateSize(m *Module, target Target) int {
	return costmodel.ModuleBytes(m, target)
}

// OptimizeModule runs function merging over m in place and returns the
// report (committed merges, size reduction, phase timings).
func OptimizeModule(m *Module, opts Options) *Report {
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	return driver.Run(m, driver.Config{
		Algorithm: opts.Algorithm,
		Threshold: opts.Threshold,
		Target:    opts.Target,
	})
}

// MergeFunctions merges the two named functions of m with SalSSA,
// unconditionally (no profitability check), and replaces the originals
// with forwarding thunks. It returns the merged function and the
// generator statistics.
func MergeFunctions(m *Module, name1, name2 string) (*Function, *MergeStats, error) {
	f1, f2 := m.FuncByName(name1), m.FuncByName(name2)
	if f1 == nil || f2 == nil {
		return nil, nil, fmt.Errorf("repro: function %q or %q not found", name1, name2)
	}
	plan, err := core.PlanParams(f1, f2)
	if err != nil {
		return nil, nil, err
	}
	merged, stats, err := core.Merge(m, f1, f2, "merged."+name1+"."+name2, core.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	transform.Simplify(merged)
	core.BuildThunk(f1, merged, true, plan.Map1, plan)
	core.BuildThunk(f2, merged, false, plan.Map2, plan)
	return merged, stats, nil
}
