package repro

import (
	"context"
	"fmt"

	"repro/internal/driver"
)

// Session is a long-lived merge engine over one module, created by
// (*Optimizer).Open. Where Optimize rebuilds every index — fingerprint
// ranking, LSH buckets, linearization/class cache — from scratch on
// each call, a Session builds them once and maintains them
// incrementally, so repeated runs over an evolving module pay only for
// the delta:
//
//	s, _ := opt.Open(ctx, m)
//	defer s.Close()
//	s.Optimize(ctx)              // full first run, indexes retained
//	...caller edits @foo, deletes @bar...
//	s.Update(ctx, "foo")         // re-index just the touched function
//	s.Remove(ctx, "bar")
//	s.Optimize(ctx)              // pays for the delta, not the module
//
// Beyond incremental Optimize, a Session splits planning from
// committing: Plan returns a serializable MergePlan of the merges a run
// would commit without touching the module, and Apply commits a
// (possibly filtered) plan later — the shape a build service needs to
// review, shard or audit merges before applying them.
//
// Sessions additionally memoize unprofitable candidate pairs across
// runs (an unprofitable trial depends only on the two bodies and the
// options), so a re-optimize skips the alignment DP of everything that
// already failed the cost model; see Report.OutcomeHits.
//
// Session methods are safe for concurrent use but execute one at a
// time; the module must not be mutated while a session method runs.
// The FMSA baseline is supported for Optimize only (register demotion
// rewrites the whole module around each run, so nothing can be carried
// over); Plan and Apply require a SalSSA variant.
type Session struct {
	s *driver.Session
}

// MergePlan is the serializable outcome of Session.Plan: the duplicate
// folds and merges a run would commit, in commit order, with nothing
// applied. It round-trips through encoding/json; Session.Apply verifies
// the embedded structural hashes, so a stale plan is rejected rather
// than silently merging changed code. Filtering entries out of a plan
// is sound; reordering them is not.
type MergePlan = driver.Plan

// PlannedMerge is one proposed merge within a MergePlan.
type PlannedMerge = driver.PlannedMerge

// PlannedFold is one proposed duplicate fold within a MergePlan.
type PlannedFold = driver.PlannedFold

// SessionSnapshot is the serializable index state of a Session:
// structural hashes, fingerprints, LSH sketches and the
// unprofitable-pair memo, versioned and checksummed. Save one to disk
// with encoding/json and a later process warm-restarts through
// (*Optimizer).OpenWithSnapshot without rebuilding the indexes.
type SessionSnapshot = driver.Snapshot

// ErrUnknownFunction is wrapped by Session.Update and Session.Remove
// when a name resolves to neither a module function nor an indexed
// candidate. Test with errors.Is.
var ErrUnknownFunction = driver.ErrUnknownFunction

// ErrConflictingDelta is wrapped by Session.UpdateBatch when one batch
// names the same function as both updated and removed — inside a batch
// there is no order to disambiguate the two, so the edit log is
// incoherent and the whole batch is rejected before anything is
// marked. Test with errors.Is.
var ErrConflictingDelta = driver.ErrConflictingDelta

// ErrStalePlan is wrapped by Session.Apply when a plan's structural
// hashes no longer match the module. Test with errors.Is; the standard
// reaction is to Plan again and retry.
var ErrStalePlan = driver.ErrStalePlan

// Open builds a Session over m: every candidate and alignment index is
// constructed here, once, and then maintained incrementally. Open never
// mutates the module. The Optimizer stays reusable: any number of
// sessions (over different modules) may share it, and its one-shot
// methods keep working alongside them.
func (o *Optimizer) Open(ctx context.Context, m *Module) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("repro: Open on nil module")
	}
	ds, err := driver.OpenSession(ctx, m, o.config())
	if err != nil {
		return nil, err
	}
	return &Session{s: ds}, nil
}

// OpenWithSnapshot is Open resuming from a SessionSnapshot taken by an
// earlier Session over the same (persisted) module: every function
// whose body still matches its snapshot hash adopts the recorded
// fingerprint and sketch instead of being recomputed, so a warm restart
// serves its first Plan without rebuilding the indexes. A snapshot that
// fails validation — wrong version, corrupt, or taken under a different
// configuration — is an error; callers typically fall back to Open.
func (o *Optimizer) OpenWithSnapshot(ctx context.Context, m *Module, snap *SessionSnapshot) (*Session, error) {
	if m == nil {
		return nil, fmt.Errorf("repro: OpenWithSnapshot on nil module")
	}
	ds, err := driver.OpenSessionWithSnapshot(ctx, m, o.config(), snap)
	if err != nil {
		return nil, err
	}
	return &Session{s: ds}, nil
}

// Optimize runs the full merging pipeline against the session's
// indexes, mutating the module in place. The first call is equivalent
// to (*Optimizer).Optimize; later calls are incremental, paying only
// for functions changed through Update/Remove (or by earlier commits).
// On cancellation it stops between trials, leaves every
// already-committed merge in place, and returns the partial report
// together with ctx.Err().
func (s *Session) Optimize(ctx context.Context) (*Report, error) {
	return s.s.Optimize(ctx)
}

// Plan is the dry run: the same candidate walk as Optimize, simulated
// without touching the module, returning the MergePlan of merges (and
// duplicate folds) a commit run would apply. Plan requires a SalSSA
// variant.
func (s *Session) Plan(ctx context.Context) (*MergePlan, error) {
	return s.s.Plan(ctx)
}

// PlanReport is Plan with the dry run's accounting: the Report carries
// the planning-stage counters — attempts, cache and memo hits, and the
// planning funnel's PairsScreened / DPAborted / TrialsBuilt /
// TrialsSkipped — plus phase timings, with FinalBytes equal to
// BaselineBytes since a dry run never mutates the module.
func (s *Session) PlanReport(ctx context.Context) (*MergePlan, *Report, error) {
	return s.s.PlanReport(ctx)
}

// PlanSharded is Plan split into nshards fingerprint-size bands with a
// cross-shard second stage: each band plans in isolation (in parallel,
// over private module clones), then one more pass covers the candidates
// no band consumed. The result is an ordinary MergePlan for Apply.
// Sharded plans trade a little merge quality for parallel planning
// latency and never flatten families; nshards <= 1 is exactly Plan.
func (s *Session) PlanSharded(ctx context.Context, nshards int) (*MergePlan, error) {
	return s.s.PlanSharded(ctx, nshards)
}

// PlanShardedReport is PlanSharded with the aggregated accounting of
// every band walk and the cross-shard pass summed into one Report (see
// PlanReport for its shape).
func (s *Session) PlanShardedReport(ctx context.Context, nshards int) (*MergePlan, *Report, error) {
	return s.s.PlanShardedReport(ctx, nshards)
}

// Snapshot exports the session's index state — structural hashes,
// fingerprints, sketches and the unprofitable-pair memo — as a
// serializable, checksummed SessionSnapshot. Persist it alongside the
// module text and a later process resumes through OpenWithSnapshot
// without rebuilding the indexes. Requires a SalSSA variant.
func (s *Session) Snapshot() (*SessionSnapshot, error) {
	return s.s.Snapshot()
}

// SaveSnapshot exports the session's index state and writes it to path
// atomically (temp file + fsync + rename), so a crash mid-save leaves
// either the previous snapshot or the complete new one.
func (s *Session) SaveSnapshot(path string) error {
	snap, err := s.Snapshot()
	if err != nil {
		return err
	}
	return snap.SaveFile(path)
}

// LoadSessionSnapshot reads a snapshot written by SaveSnapshot (or any
// JSON-encoded SessionSnapshot). Validation — version, checksum,
// configuration guard — happens when the snapshot is handed to
// OpenWithSnapshot.
func LoadSessionSnapshot(path string) (*SessionSnapshot, error) {
	return driver.LoadSnapshotFile(path)
}

// SearchStats returns the candidate finder's cumulative accounting
// since the session opened. Built counts fingerprint/sketch
// computations: a session opened through OpenWithSnapshot from a fully
// matching snapshot reports Built == 0.
func (s *Session) SearchStats() (SearchStats, error) {
	return s.s.SearchStats()
}

// Apply commits a plan — typically a possibly-filtered result of Plan —
// against the module. Every referenced function is verified against the
// plan's structural hash first; if the module changed underneath the
// plan, Apply fails with an error naming the stale function. On failure
// or cancellation the already-committed prefix stays in place.
func (s *Session) Apply(ctx context.Context, plan *MergePlan) (*Report, error) {
	return s.s.Apply(ctx, plan)
}

// Update re-indexes the named functions after the caller mutated them
// (or added them to the module): only they are re-fingerprinted,
// re-sketched and re-linearized, and only trial outcomes involving them
// are forgotten. A name still present in the module but no longer
// defined is treated as a removal. A name resolving to neither a module
// function nor an indexed candidate fails with an error wrapping
// ErrUnknownFunction, and the whole call is validated before anything
// is marked — on error no name took effect.
func (s *Session) Update(ctx context.Context, changed ...string) error {
	return s.s.Update(ctx, changed...)
}

// Remove drops the named functions from the candidate set, typically
// after the caller deleted them from the module. A function that is
// still defined simply stops being considered until a later Update
// re-admits it. A name resolving to neither an indexed candidate nor a
// module function fails with an error wrapping ErrUnknownFunction; like
// Update, the call validates every name before marking any.
func (s *Session) Remove(ctx context.Context, names ...string) error {
	return s.s.Remove(ctx, names...)
}

// UpdateBatch applies one coherent delta — changed (or added) function
// names plus removed names — in a single re-index pass: one finder
// batch insert, one candidate-cache invalidation sweep, one
// canonical-view invalidation set, where n sequential Update/Remove
// calls would pay n. The resulting session state (and every later
// merge decision) is identical to the sequential calls. The whole
// batch is validated first: an unknown name fails with
// ErrUnknownFunction, a name in both lists with ErrConflictingDelta,
// and on error nothing is marked.
func (s *Session) UpdateBatch(ctx context.Context, changed, removed []string) error {
	return s.s.UpdateBatch(ctx, changed, removed)
}

// RemoveBatch is Remove over a slice; it exists for symmetry with
// UpdateBatch (removal marking is already a single pass).
func (s *Session) RemoveBatch(ctx context.Context, names []string) error {
	return s.s.RemoveBatch(ctx, names)
}

// Flush forces the pending re-index window now instead of at the next
// Optimize, Plan or Apply: everything marked by Update, Remove or
// UpdateBatch is re-indexed in one batched pass. Flush only moves when
// the maintenance happens — session state and every later merge
// decision are identical either way. A serving daemon calls it to pay
// re-index cost at update time rather than on the first query after.
func (s *Session) Flush() error { return s.s.Flush() }

// Close releases the session's indexes; further method calls fail. The
// module is untouched and keeps every committed merge. Close is
// idempotent.
func (s *Session) Close() error { return s.s.Close() }
