// Templates: deduplicate a C++-template-like module. The paper's largest
// wins (447.dealII, 510.parest_r: >40% size reduction) come from heavy
// template instantiation — many near-identical functions. This example
// builds such a module synthetically and runs the whole-module pipeline
// at the three exploration thresholds of the evaluation.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	repro "repro"
	"repro/internal/ir"
	"repro/internal/synth"
)

func main() {
	profile := synth.Profile{
		Name: "templatelib", Seed: 2020,
		Funcs: 120, MinSize: 10, AvgSize: 60, MaxSize: 300,
		CloneFrac: 0.7, FamilySize: 4, MutRate: 0.03,
		Loops: 0.5, Floats: 0.2, ExcRate: 0.05,
	}
	fmt.Println("building a template-instantiation-heavy module:")
	base := synth.Generate(profile)
	st := synth.ModuleStats(base)
	fmt.Printf("  %d functions, sizes %d/%.1f/%d (min/avg/max), %d phis\n\n",
		st.Funcs, st.MinSize, st.AvgSize, st.MaxSize, st.PhiInstrs)

	ctx := context.Background()
	for _, t := range []int{1, 5, 10} {
		opt, err := repro.New(repro.WithThreshold(t))
		if err != nil {
			log.Fatal(err)
		}
		m := ir.CloneModule(base)
		rep, err := opt.Optimize(ctx, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SalSSA[t=%d]: %2d merges, %6d -> %6d bytes (%.1f%% reduction) in %v\n",
			t, len(rep.Merges), rep.BaselineBytes, rep.FinalBytes,
			rep.Reduction(), rep.TotalTime.Round(1000000))
	}

	// The same threshold-10 sweep with parallel merge planning: the
	// committed merges are identical, the wall clock is not.
	par, err := repro.New(repro.WithThreshold(10), repro.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	m := ir.CloneModule(base)
	rep, err := par.Optimize(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SalSSA[t=10, %d jobs]: %2d merges, same result, in %v (%d trials planned in parallel)\n",
		runtime.NumCPU(), len(rep.Merges), rep.TotalTime.Round(1000000), rep.Planned)

	fmt.Println()
	fmsa, err := repro.New(repro.WithAlgorithm(repro.FMSA))
	if err != nil {
		log.Fatal(err)
	}
	m = ir.CloneModule(base)
	rep, err = fmsa.Optimize(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FMSA  [t=1]: %2d merges, %6d -> %6d bytes (%.1f%% reduction) in %v\n",
		len(rep.Merges), rep.BaselineBytes, rep.FinalBytes,
		rep.Reduction(), rep.TotalTime.Round(1000000))
	fmt.Println("\n(the gap is the paper's headline: direct SSA merging roughly doubles")
	fmt.Println(" the reduction of the demotion-based state of the art)")
}
