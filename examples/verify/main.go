// Verify: differential testing of a merge. Function merging must be
// semantics-preserving; this example merges a pair, then executes the
// original and merged code on a grid of inputs in the reference
// interpreter and compares return values and external call traces —
// the same oracle the repository's test suite applies across the whole
// synthetic corpus.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irtext"
)

func main() {
	m, err := repro.ParseModule(irtext.Fig2Module)
	if err != nil {
		log.Fatal(err)
	}
	// Keep the originals around for comparison.
	pristine := ir.CloneModule(m)

	opt, err := repro.New()
	if err != nil {
		log.Fatal(err)
	}
	merged, _, err := opt.MergePair(context.Background(), m, "F1", "F2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged into @%s; differential check over 32 runs per function:\n", merged.Name())

	// F2 iterates while @body's result is nonzero: give body convergent
	// semantics so every run terminates.
	proto := interp.NewEnv()
	proto.Externals["body"] = func(args []interp.Value) (interp.Value, error) {
		return interp.IntV(args[0].Int / 2), nil
	}

	for _, name := range []string{"F1", "F2"} {
		failures := 0
		var steps0, steps1 int
		for seed := int64(1); seed <= 32; seed++ {
			of := pristine.FuncByName(name)
			nf := m.FuncByName(name) // now a thunk into the merged function
			a := interp.Run(proto, of, interp.ArgsFor(of, seed))
			b := interp.Run(proto, nf, interp.ArgsFor(nf, seed))
			steps0 += a.Steps
			steps1 += b.Steps
			if same, why := interp.SameBehavior(a, b); !same {
				failures++
				fmt.Printf("  @%s seed %d MISMATCH: %s\n", name, seed, why)
			}
		}
		overhead := 100 * (float64(steps1)/float64(steps0) - 1)
		fmt.Printf("  @%-3s: %d/32 runs identical; dynamic instructions %+0.1f%% (the Figure 25 metric)\n",
			name, 32-failures, overhead)
	}
	fmt.Println("\nthe merged function pays a few dynamic instructions (fid dispatch,")
	fmt.Println("operand selects) in exchange for the static size reduction")
}
