// Session workflow: open a long-lived merge engine over a module, dry-run
// a merge plan, review and filter it, apply it, then evolve the module
// and re-optimize incrementally — the loop a build service runs per
// compilation instead of paying a full index rebuild each time.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	repro "repro"
)

// Four sibling functions: A, B and C share one shape (C is an exact
// clone of A), D is unrelated, and E is unreferenced scaffolding.
const input = `
declare i32 @ext(i32)
declare i32 @other(i32)

define i32 @A(i32 %n) {
e:
  %a = add i32 %n, 1
  %b = mul i32 %a, 3
  %c = call i32 @ext(i32 %b)
  %d = sub i32 %c, 5
  %e2 = mul i32 %d, %a
  %f = add i32 %e2, %b
  ret i32 %f
}

define i32 @B(i32 %n) {
e:
  %a = add i32 %n, 2
  %b = mul i32 %a, 3
  %c = call i32 @ext(i32 %b)
  %d = sub i32 %c, 5
  %e2 = mul i32 %d, %a
  %f = add i32 %e2, %b
  ret i32 %f
}

define i32 @C(i32 %n) {
e:
  %a = add i32 %n, 1
  %b = mul i32 %a, 3
  %c = call i32 @ext(i32 %b)
  %d = sub i32 %c, 5
  %e2 = mul i32 %d, %a
  %f = add i32 %e2, %b
  ret i32 %f
}

define i32 @D(i32 %n) {
e:
  %a = call i32 @other(i32 %n)
  %b = xor i32 %a, 255
  ret i32 %b
}

define i32 @E(i32 %n) {
e:
  %a = shl i32 %n, 4
  %b = or i32 %a, 1
  %c = call i32 @other(i32 %b)
  ret i32 %c
}
`

func main() {
	ctx := context.Background()
	m, err := repro.ParseModule(input)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := repro.New(repro.WithThreshold(2), repro.WithDupFold(true))
	if err != nil {
		log.Fatal(err)
	}

	// Open builds every index once; the session reuses them below.
	s, err := opt.Open(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// 1. Dry run: what would the pipeline merge? The module is untouched.
	plan, err := s.Plan(ctx)
	if err != nil {
		log.Fatal(err)
	}
	blob, _ := json.MarshalIndent(plan, "", "  ")
	fmt.Printf("proposed plan (module untouched):\n%s\n\n", blob)

	// 2. Review/filter: a service could ship this JSON elsewhere, have
	// it approved, drop entries it dislikes — here we keep everything.
	rep, err := s.Apply(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied: %d merges, %d folds, %d -> %d bytes\n\n",
		len(rep.Merges), len(rep.Folds), rep.BaselineBytes, rep.FinalBytes)

	// 3. The module evolves: @E is deleted by its owner. Report the
	// delta instead of reopening — only @E's index entries are touched.
	m.RemoveFunc(m.FuncByName("E"))
	if err := s.Update(ctx, "E"); err != nil {
		log.Fatal(err)
	}

	// 4. Re-optimize incrementally. Report.OutcomeHits counts the trials
	// served from the session's cross-run memo instead of re-aligning;
	// once the module stops changing, every trial comes from the memo.
	rep, err = s.Optimize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimize after delta: %d merges, %d of %d trials memo-served\n",
		len(rep.Merges), rep.OutcomeHits, rep.Attempts)
	rep, err = s.Optimize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state re-optimize: %d merges, %d of %d trials memo-served\n\n",
		len(rep.Merges), rep.OutcomeHits, rep.Attempts)

	if err := repro.VerifyModule(m); err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.FormatModule(m))
}
