// Quickstart: parse two similar functions (the paper's Figure 2
// motivating example), merge them with SalSSA, and print the result.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
)

const input = `
declare i32 @start(i32)
declare i32 @body(i32)
declare i32 @other(i32)
declare i32 @end(i32)

define i32 @F1(i32 %n) {
l1:
  %x1 = call i32 @start(i32 %n)
  %x2 = icmp slt i32 %x1, 0
  br i1 %x2, label %l2, label %l3
l2:
  %x3 = call i32 @body(i32 %x1)
  br label %l4
l3:
  %x4 = call i32 @other(i32 %x1)
  br label %l4
l4:
  %x5 = phi i32 [ %x3, %l2 ], [ %x4, %l3 ]
  %x6 = call i32 @end(i32 %x5)
  ret i32 %x6
}

define i32 @F2(i32 %n) {
l1:
  %v1 = call i32 @start(i32 %n)
  br label %l2
l2:
  %v2 = phi i32 [ %v1, %l1 ], [ %v4, %l3 ]
  %v3 = icmp ne i32 %v2, 0
  br i1 %v3, label %l3, label %l4
l3:
  %v4 = call i32 @body(i32 %v2)
  br label %l2
l4:
  %v5 = call i32 @end(i32 %v2)
  ret i32 %v5
}
`

func main() {
	m, err := repro.ParseModule(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %d bytes (x86-64 size model)\n", repro.EstimateSize(m, repro.X86_64))

	opt, err := repro.New() // defaults: SalSSA, t=1, x86-64
	if err != nil {
		log.Fatal(err)
	}
	merged, stats, err := opt.MergePair(context.Background(), m, "F1", "F2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged @F1 and @F2 into @%s\n", merged.Name())
	fmt.Printf("  aligned entries: %d (%d instructions)\n", stats.Matches, stats.InstrMatches)
	fmt.Printf("  operand selects: %d, label selections: %d, xor rewrites: %d\n",
		stats.Selects, stats.LabelSelections, stats.XorRewrites)
	fmt.Printf("  SSA repairs: %d definitions, %d coalesced pairs\n",
		stats.RepairedDefs, stats.CoalescedPairs)
	if err := repro.VerifyModule(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: %d bytes\n\n", repro.EstimateSize(m, repro.X86_64))
	fmt.Println(repro.FormatModule(m))
}
