// Embedded: the MiBench scenario. Code size is the scarce resource on
// embedded targets; this example runs function merging over MiBench-like
// programs with the ARM Thumb size model (the paper's Figure 18 setup)
// and prints the per-program size ledger.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/ir"
	"repro/internal/synth"
)

func main() {
	// One Optimizer serves every program: it is immutable and reusable.
	opt, err := repro.New(repro.WithTarget(repro.Thumb))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MiBench-like embedded programs, ARM Thumb size model, SalSSA[t=1]:")
	fmt.Printf("%-14s %8s %8s %8s %7s\n", "program", "funcs", "before", "after", "red%")
	var totalBefore, totalAfter int
	for _, p := range synth.MiBench() {
		if p.Funcs > 128 {
			p.Funcs = 128 // keep the demo quick; cmd/repro runs full scale
		}
		m := synth.Generate(p)
		nfuncs := len(m.Defined())
		rep, err := opt.Optimize(context.Background(), m)
		if err != nil {
			log.Fatal(err)
		}
		if err := ir.VerifyModule(m); err != nil {
			fmt.Printf("%-14s VERIFY FAILED: %v\n", p.Name, err)
			continue
		}
		totalBefore += rep.BaselineBytes
		totalAfter += rep.FinalBytes
		fmt.Printf("%-14s %8d %8d %8d %6.1f%%\n",
			p.Name, nfuncs, rep.BaselineBytes, rep.FinalBytes, rep.Reduction())
	}
	fmt.Printf("%-14s %8s %8d %8d %6.1f%%\n", "total", "",
		totalBefore, totalAfter,
		100*float64(totalBefore-totalAfter)/float64(totalBefore))
}
